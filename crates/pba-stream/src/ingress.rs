//! The **ingress** stage of the streaming pipeline: arriving balls, stamped
//! with a monotone arrival id, waiting to be allocated.
//!
//! Two ingress shapes exist:
//!
//! * The single-threaded [`StreamAllocator`](crate::StreamAllocator) buffers
//!   [`PendingBall`]s in a plain `Vec` — arrival order is call order, and the
//!   drain slices the buffer into batches with zero copies.
//! * The multi-threaded [`ConcurrentRouter`](crate::ConcurrentRouter) accepts
//!   `push`es from many producer threads at once through a
//!   [`ShardedIngress`]: a set of MPMC lanes (crossbeam channels) chosen by
//!   arrival id, so producers do not contend on one queue head. Because a
//!   slow producer can publish its ball *after* a later-stamped ball from a
//!   faster thread, a drain first collects every queued ball and then
//!   **sequences** them — sorts by arrival id — before batching. With one
//!   producer thread the sequence equals call order exactly, which is what
//!   makes the concurrent push path bit-identical to the buffered engine in
//!   the single-caller case; with many producers the ids (and therefore
//!   batch compositions) are exactly as reproducible as the arrival
//!   interleaving itself.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A ball waiting in an arrival buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingBall {
    /// Globally unique, monotonically increasing ball id (the arrival
    /// sequence number).
    pub id: u64,
    /// Router key; candidate bins are a pure hash of `(seed, key)`.
    pub key: u64,
}

/// Sharded MPMC arrival lanes for the concurrent engine (see the module
/// docs). All operations take `&self`; `enqueue` may run from any number of
/// producer threads while a drainer collects.
pub(crate) struct ShardedIngress {
    /// The lanes. Both channel halves are kept so the ingress never
    /// disconnects; a ball's lane is `id % lanes`, a pure function of the
    /// arrival id so lane assignment is reproducible.
    lanes: Vec<(Sender<PendingBall>, Receiver<PendingBall>)>,
    /// Balls enqueued and not yet collected by a drain.
    queued: AtomicU64,
    /// One past the largest arrival id any drain has collected — the
    /// re-sequencing watermark. A ball collected *below* it surfaced after a
    /// later-stamped ball had already been seen (a slow producer published
    /// late), i.e. the sequencer had to stall/re-merge for it.
    high_water: AtomicU64,
}

impl std::fmt::Debug for ShardedIngress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIngress")
            .field("lanes", &self.lanes.len())
            .field("queued", &self.queued())
            .finish()
    }
}

impl ShardedIngress {
    /// An empty ingress with `lanes` MPMC lanes (clamped to at least 1).
    pub fn new(lanes: usize) -> Self {
        Self {
            lanes: (0..lanes.max(1)).map(|_| unbounded()).collect(),
            queued: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// Enqueues one stamped ball on its lane.
    pub fn enqueue(&self, ball: PendingBall) {
        self.queued.fetch_add(1, Ordering::AcqRel);
        let lane = (ball.id % self.lanes.len() as u64) as usize;
        self.lanes[lane]
            .0
            .send(ball)
            .expect("ingress lane holds both halves");
    }

    /// Balls enqueued and not yet collected.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Acquire)
    }

    /// Collects every currently queued ball into `out` and sequences the
    /// whole buffer by arrival id; returns `(collected, late)` — how many
    /// balls were collected, and how many of them were **late arrivals**:
    /// balls below the watermark of a previous collection, i.e. published by
    /// a slow producer after a later-stamped ball had already been drained
    /// past (the re-sequencing stalls the no-silent-drops rule makes
    /// countable). `out` may carry an (already sorted) leftover tail from a
    /// previous drain — the sort re-merges it with the new arrivals.
    ///
    /// Callers hold the drain lock, so collections are serial; the watermark
    /// uses plain atomic load/store rather than a CAS loop.
    pub fn collect_into(&self, out: &mut Vec<PendingBall>) -> (usize, u64) {
        let mut collected = 0usize;
        let mut late = 0u64;
        let watermark = self.high_water.load(Ordering::Acquire);
        let mut max_seen = watermark;
        for (_, receiver) in &self.lanes {
            while let Ok(ball) = receiver.try_recv() {
                if ball.id < watermark {
                    late += 1;
                } else if ball.id >= max_seen {
                    max_seen = ball.id + 1;
                }
                out.push(ball);
                collected += 1;
            }
        }
        self.high_water.store(max_seen, Ordering::Release);
        self.queued.fetch_sub(collected as u64, Ordering::AcqRel);
        out.sort_unstable_by_key(|ball| ball.id);
        (collected, late)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sequences_by_arrival_id_across_lanes() {
        let ingress = ShardedIngress::new(3);
        // Enqueue out of order (as racing producers would publish).
        for id in [4u64, 0, 2, 5, 1, 3] {
            ingress.enqueue(PendingBall { id, key: id * 10 });
        }
        assert_eq!(ingress.queued(), 6);
        let mut out = Vec::new();
        assert_eq!(ingress.collect_into(&mut out), (6, 0));
        assert_eq!(ingress.queued(), 0);
        let ids: Vec<u64> = out.iter().map(|b| b.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn late_arrivals_are_counted_against_the_watermark() {
        let ingress = ShardedIngress::new(2);
        ingress.enqueue(PendingBall { id: 5, key: 5 });
        let mut out = Vec::new();
        // First collection sets the watermark past id 5; nothing is late yet
        // (out-of-order *within* one collection is resolved by the sort).
        assert_eq!(ingress.collect_into(&mut out), (1, 0));
        // Ids 2 and 3 surface after id 5 was already collected: both late.
        ingress.enqueue(PendingBall { id: 2, key: 2 });
        ingress.enqueue(PendingBall { id: 3, key: 3 });
        ingress.enqueue(PendingBall { id: 8, key: 8 });
        assert_eq!(ingress.collect_into(&mut out), (3, 2));
        // The watermark advanced past 8; a fresh on-time ball is not late.
        ingress.enqueue(PendingBall { id: 9, key: 9 });
        assert_eq!(ingress.collect_into(&mut out), (1, 0));
    }

    #[test]
    fn leftover_tail_is_remerged() {
        let ingress = ShardedIngress::new(2);
        ingress.enqueue(PendingBall { id: 7, key: 7 });
        let mut out = vec![PendingBall { id: 3, key: 3 }, PendingBall { id: 9, key: 9 }];
        ingress.collect_into(&mut out);
        let ids: Vec<u64> = out.iter().map(|b| b.id).collect();
        assert_eq!(ids, vec![3, 7, 9]);
    }

    #[test]
    fn concurrent_producers_never_lose_balls() {
        use std::sync::Arc;
        let ingress = Arc::new(ShardedIngress::new(4));
        let next = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let ingress = Arc::clone(&ingress);
            let next = Arc::clone(&next);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let id = next.fetch_add(1, Ordering::Relaxed);
                    ingress.enqueue(PendingBall { id, key: id });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(ingress.collect_into(&mut out).0, 4000);
        let ids: Vec<u64> = out.iter().map(|b| b.id).collect();
        assert_eq!(ids, (0..4000).collect::<Vec<u64>>(), "sequenced, no loss");
    }
}
