//! Resolved metric handles for the streaming engines.
//!
//! The engines never hold a registry reference on the hot path; at
//! construction (or [`install`](StreamMetrics::resolve)) they resolve every
//! metric they will ever touch into a [`StreamMetrics`] bundle of cheap
//! cloneable handles, and at runtime each event is one relaxed `fetch_add`.
//! An engine whose metrics slot is `None` executes **zero** metric
//! instructions — the disabled fast path the bench arm
//! `route_instrumented_vs_bare` measures.
//!
//! ## Counter inventory (the no-silent-drops ledger)
//!
//! Every rejection or fallback path in the streaming stack maps to exactly
//! one counter here:
//!
//! | counter | path |
//! |---|---|
//! | `route.rejected_unknown_ticket` | `release` of a forged/double/foreign ticket |
//! | `policy.threshold_fallback` | [`Policy::Threshold`](crate::Policy) — all candidates at/above the batch threshold |
//! | `policy.overflow_retry` | [`Policy::CapacityThreshold`](crate::Policy) — first candidate set overflowed, fresh set drawn |
//! | `policy.overflow_fallback` | [`Policy::CapacityThreshold`](crate::Policy) — both sets overflowed, least-normalized concession |
//! | `policy.weighted_uniform_fallback` | weighted `sample_distinct` degraded to uniform draws |
//! | `ingress.late_arrivals` | a ball surfaced at a boundary after a later-id ball had already been drained (re-sequencing stall) |
//! | `observer.errors` | an external observer's lock was poisoned; its hooks were skipped |
//! | `membership.rejected_adds` | `Add` staged with no retired slot left (or a bad weight) |
//! | `membership.rejected_drains` | `Drain` of a non-active bin, or of the last active bin |
//! | `membership.rejected_removes` | `Remove` of a non-draining or still-occupied bin |
//! | `membership.rejected_routes_to_draining` | a concurrent route landed on a bin drained between snapshot and commit; the placement was undone and retried |
//!
//! Metrics are **write-only** for the engines: no allocation decision ever
//! reads one, so installing metrics cannot perturb RNG streams or placements
//! (property-tested in `tests/observability_properties.rs`).

use std::sync::Arc;

use pba_obs::{Counter, CounterVec, Gauge, MetricsRegistry};

/// Counters for the policy-level fallback paths, shared by reference with
/// every choose worker of a parallel drain (handles are `Sync`; increments
/// are relaxed atomics, so workers never serialize on them).
#[derive(Debug, Clone, Default)]
pub struct PolicyCounters {
    /// `Threshold` found no candidate below the batch threshold.
    pub threshold_fallback: Counter,
    /// `CapacityThreshold` drew a fresh candidate set after an overflow.
    pub overflow_retry: Counter,
    /// `CapacityThreshold` conceded after both sets overflowed.
    pub overflow_fallback: Counter,
    /// Weighted distinct sampling degraded to uniform draws (near-degenerate
    /// skew); counts individual fallback draws.
    pub weighted_uniform_fallback: Counter,
}

impl PolicyCounters {
    /// Resolves the `policy.*` handles against `registry`.
    pub fn resolve(registry: &MetricsRegistry) -> Self {
        Self {
            threshold_fallback: registry.counter("policy.threshold_fallback"),
            overflow_retry: registry.counter("policy.overflow_retry"),
            overflow_fallback: registry.counter("policy.overflow_fallback"),
            weighted_uniform_fallback: registry.counter("policy.weighted_uniform_fallback"),
        }
    }
}

/// Counters for the elastic-membership verbs (see the `membership` façade
/// module): every accepted lifecycle transition, every migration, and every
/// rejection — no membership outcome is silent.
#[derive(Debug, Clone, Default)]
pub struct MembershipCounters {
    /// Bins commissioned (`Add` accepted).
    pub adds: Counter,
    /// Bins moved to draining (`Drain` accepted).
    pub drains: Counter,
    /// Bins retired (`Remove` accepted).
    pub removes: Counter,
    /// Ticketed residents force-migrated off draining bins.
    pub migrations: Counter,
    /// `Add` events rejected (capacity exhausted or bad weight).
    pub rejected_adds: Counter,
    /// `Drain` events rejected (not active, or last active bin).
    pub rejected_drains: Counter,
    /// `Remove` events rejected (not draining, or still occupied).
    pub rejected_removes: Counter,
    /// Concurrent routes undone because their bin drained mid-flight.
    pub rejected_routes_to_draining: Counter,
}

impl MembershipCounters {
    /// Resolves the `membership.*` handles against `registry`.
    pub fn resolve(registry: &MetricsRegistry) -> Self {
        Self {
            adds: registry.counter("membership.adds"),
            drains: registry.counter("membership.drains"),
            removes: registry.counter("membership.removes"),
            migrations: registry.counter("membership.migrations"),
            rejected_adds: registry.counter("membership.rejected_adds"),
            rejected_drains: registry.counter("membership.rejected_drains"),
            rejected_removes: registry.counter("membership.rejected_removes"),
            rejected_routes_to_draining: registry.counter("membership.rejected_routes_to_draining"),
        }
    }
}

/// Every handle a streaming engine records into, resolved once. Cloning is
/// cheap (each handle is an `Arc`), so the concurrent router's shared core
/// and each drained batch can carry the same bundle.
#[derive(Debug, Clone)]
pub struct StreamMetrics {
    /// The registry the handles came from (kept so engines can lend it out
    /// for snapshots).
    pub registry: Arc<MetricsRegistry>,
    /// Tickets issued (successful `route` calls).
    pub routed: Counter,
    /// Tickets redeemed (successful `release` calls).
    pub released: Counter,
    /// `release` calls rejected with `UnknownTicket`.
    pub rejected_unknown_ticket: Counter,
    /// Balls committed to bins by drained batches.
    pub placed: Counter,
    /// Per-bin commit counts (slot = bin index).
    pub bin_commits: CounterVec,
    /// Batch boundaries crossed.
    pub batches: Counter,
    /// Gap at the latest boundary.
    pub gap: Gauge,
    /// Resident balls at the latest boundary.
    pub resident: Gauge,
    /// Balls that surfaced after a later-id ball had already drained.
    pub ingress_late: Counter,
    /// External observers skipped because their lock was poisoned.
    pub observer_errors: Counter,
    /// The policy-level fallback counters.
    pub policy: PolicyCounters,
    /// The elastic-membership lifecycle counters.
    pub membership: MembershipCounters,
}

impl StreamMetrics {
    /// Resolves every streaming handle against `registry` for an engine with
    /// `bins` bins.
    pub fn resolve(registry: Arc<MetricsRegistry>, bins: usize) -> Self {
        Self {
            routed: registry.counter("route.routed"),
            released: registry.counter("route.released"),
            rejected_unknown_ticket: registry.counter("route.rejected_unknown_ticket"),
            placed: registry.counter("route.placed"),
            bin_commits: registry.counter_vec("route.bin_commits", bins),
            batches: registry.counter("router.stream_batches"),
            gap: registry.gauge("router.stream_gap"),
            resident: registry.gauge("router.stream_resident"),
            ingress_late: registry.counter("ingress.late_arrivals"),
            observer_errors: registry.counter("observer.errors"),
            policy: PolicyCounters::resolve(&registry),
            membership: MembershipCounters::resolve(&registry),
            registry,
        }
    }

    /// Records one drained batch: the per-bin commits, the boundary gauges,
    /// and the batch/placed totals. Called once per boundary — never inside
    /// the choose loop — so instrumentation cost is amortised over the batch.
    pub fn record_batch(&self, batch_bins: &[u32], gap: f64, resident: u64) {
        self.batches.inc();
        self.placed.add(batch_bins.len() as u64);
        for &bin in batch_bins {
            self.bin_commits.inc(bin as usize);
        }
        self.gap.set(gap);
        self.resident.set(resident as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_batch_accumulates_per_bin_and_totals() {
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = StreamMetrics::resolve(Arc::clone(&registry), 4);
        metrics.record_batch(&[0, 1, 1, 3], 0.75, 4);
        metrics.record_batch(&[2], 0.25, 5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("router.stream_batches"), 2);
        assert_eq!(snap.counter("route.placed"), 5);
        assert_eq!(
            snap.counter_vecs.get("route.bin_commits").unwrap(),
            &vec![1, 2, 1, 1]
        );
        assert_eq!(snap.gauge("router.stream_gap"), 0.25);
        assert_eq!(snap.gauge("router.stream_resident"), 5.0);
    }

    #[test]
    fn clones_share_underlying_cells() {
        let registry = Arc::new(MetricsRegistry::new());
        let a = StreamMetrics::resolve(Arc::clone(&registry), 2);
        let b = a.clone();
        a.routed.inc();
        b.routed.inc();
        assert_eq!(registry.snapshot().counter("route.routed"), 2);
    }
}
