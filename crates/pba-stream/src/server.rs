//! A minimal TCP front-end over a shared [`ConcurrentRouter`] — the
//! "serving" face of the streaming pipeline, and the harness experiment E17
//! measures through.
//!
//! The server speaks a line protocol (one request per `\n`-terminated line,
//! one reply line per request):
//!
//! | request | reply | meaning |
//! |---|---|---|
//! | `ROUTE <key>` | `OK <bin> <id>` | route one ball; the ticket is parked server-side under `<id>` |
//! | `RELEASE <id>` | `OK <bin>` or `ERR unknown-ticket` | redeem a parked ticket |
//! | `FLUSH` | `OK <boundaries>` | close the open batch (boundaries produced by this flush) |
//! | `STATS` | `OK routed <r> released <d> resident <n> batches <b>` | aggregate counters |
//! | `ADD <weight> [tier]` | `OK staged` | stage commissioning one bin of weight `weight·2^tier` (tier defaults to 0, max [`MAX_ADD_TIER`]) |
//! | `DRAIN <bin>` | `OK staged` | stage draining `<bin>` out of the sampling set |
//! | `REMOVE <bin>` | `OK staged` | stage retiring a drained, empty `<bin>` |
//! | `MIGRATE` | `OK <count>` | force-migrate ticketed residents off draining bins |
//! | anything else | `ERR bad-request` | counted, never silently dropped |
//!
//! The membership verbs stage a [`pba_membership::MembershipPlan`] on the
//! shared router; like every scale event it applies at the next batch
//! boundary, and illegal transitions (draining the last bin, removing an
//! occupied one) are *rejected there*, visible in the
//! `membership.rejected_*` counters — `OK staged` acknowledges staging, not
//! acceptance.
//!
//! Tickets are opaque to the wire: clients hold only the arrival id, and the
//! server parks the real [`Ticket`] in an id-sharded map. A `RELEASE` for an
//! id the server does not hold (never issued, already released, or a forgery)
//! is an `ERR unknown-ticket` — and increments `server.unknown_ticket`, per
//! the no-silent-drops rule.
//!
//! ## Pipelining
//!
//! A client may write many request lines before reading replies; the server
//! answers one line per request, in order. Consecutive *already-buffered*
//! `ROUTE` lines are executed as one group through
//! [`ConcurrentRouter::route_many`] — the amortized hot path — so a
//! pipelining load generator pays the per-route overhead once per group
//! instead of once per line. Grouping never reorders replies and never waits
//! for more input (only lines already sitting in the read buffer join a
//! group, which also bounds the group size by the buffer capacity), and a
//! non-`ROUTE` or malformed line simply ends the group and is answered in
//! place.
//!
//! ## Threading and shutdown
//!
//! One acceptor thread polls a non-blocking listener; each connection gets a
//! handler thread reading lines with a short read timeout. Both loops watch a
//! shared shutdown flag, so [`SocketServer::shutdown`] (or `Drop`) stops the
//! server promptly without help from the clients.
//!
//! ## Metrics
//!
//! When the router was built with
//! [`ConcurrentRouter::with_metrics`], the server resolves its own handles
//! against the same registry: `server.connections`, `server.requests`,
//! `server.bad_request`, `server.unknown_ticket`, and the
//! `server.route_latency_ns` histogram. Route latency is recorded into a
//! per-connection [`LocalHistogram`] (plain integer arithmetic on the request
//! path) and merged into the shared histogram every `MERGE_EVERY` (4096)
//! requests and at connection close.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pba_obs::{Counter, HistogramHandle, LocalHistogram};

use crate::concurrent::ConcurrentRouter;
use pba_membership::MembershipPlan;
use pba_model::router::Ticket;

/// Requests between merges of a connection's local latency histogram into
/// the shared `server.route_latency_ns` histogram.
const MERGE_EVERY: u64 = 4096;

/// Largest accepted `tier` of the `ADD <weight> [tier]` verb. A tier is a
/// power-of-two capacity-class exponent (the wire analogue of
/// [`pba_model::weights::BinWeights::power_of_two_tiers`]); `2^32` already
/// dwarfs any realistic heterogeneity, and capping here keeps the staged
/// weight `weight·2^tier` comfortably finite.
pub const MAX_ADD_TIER: u32 = 32;

/// Longest accepted request line in bytes (newline excluded). The longest
/// legitimate request (`ADD <f64> <tier>`) fits in well under 64 bytes; the
/// cap exists so a hostile client writing an endless unterminated "line"
/// cannot balloon the server's read buffer. An oversized line is answered
/// with `ERR bad-request` (counted under `server.bad_request`), its bytes
/// are discarded up to the next newline, and the connection keeps serving.
/// Shared by both front-ends (this blocking server and `pba-net`'s reactor).
pub const MAX_LINE_LEN: usize = 1024;

/// Configuration for [`SocketServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; the default `127.0.0.1:0` picks a free loopback port
    /// (read it back via [`SocketServer::local_addr`]).
    pub addr: String,
    /// Read timeout of connection handlers — the latency with which an idle
    /// connection notices a shutdown. Also the acceptor's poll interval.
    pub poll_interval: Duration,
    /// Shards of the parked-ticket map (contention control; clamped ≥ 1).
    pub ticket_shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            poll_interval: Duration::from_millis(25),
            ticket_shards: 16,
        }
    }
}

/// Server-side metric handles (resolved iff the router carries a registry).
#[derive(Debug, Clone)]
struct ServerMetrics {
    connections: Counter,
    requests: Counter,
    bad_request: Counter,
    unknown_ticket: Counter,
    route_latency: HistogramHandle,
}

impl ServerMetrics {
    fn resolve(registry: &pba_obs::MetricsRegistry) -> Self {
        Self {
            connections: registry.counter("server.connections"),
            requests: registry.counter("server.requests"),
            bad_request: registry.counter("server.bad_request"),
            unknown_ticket: registry.counter("server.unknown_ticket"),
            route_latency: registry.histogram("server.route_latency_ns"),
        }
    }
}

/// Shared state every connection handler works against.
struct Shared {
    router: ConcurrentRouter,
    /// Parked tickets, sharded by `id % shards`. Clients speak ids; only the
    /// server holds real tickets.
    tickets: Vec<Mutex<HashMap<u64, Ticket>>>,
    metrics: Option<ServerMetrics>,
    shutdown: AtomicBool,
}

impl Shared {
    fn park(&self, ticket: Ticket) {
        let shard = (ticket.id() as usize) % self.tickets.len();
        self.tickets[shard]
            .lock()
            .expect("ticket shard lock")
            .insert(ticket.id(), ticket);
    }

    fn unpark(&self, id: u64) -> Option<Ticket> {
        let shard = (id as usize) % self.tickets.len();
        self.tickets[shard]
            .lock()
            .expect("ticket shard lock")
            .remove(&id)
    }
}

/// A running TCP front-end over one [`ConcurrentRouter`] (see the
/// [module docs](self) for the protocol).
///
/// ```no_run
/// use pba_stream::{ConcurrentRouter, LineClient, Policy, ServerConfig, SocketServer, StreamConfig};
///
/// let router = ConcurrentRouter::new(
///     StreamConfig::new(64).policy(Policy::TwoChoice).batch_size(128).seed(7),
/// );
/// let server = SocketServer::start(router, ServerConfig::default()).unwrap();
/// let mut client = LineClient::connect(server.local_addr()).unwrap();
/// let (bin, id) = client.route(42).unwrap();
/// assert!(bin < 64);
/// assert_eq!(client.release(id).unwrap(), Some(bin));
/// server.shutdown();
/// ```
pub struct SocketServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SocketServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl SocketServer {
    /// Binds `config.addr` and starts the acceptor thread. The server drives
    /// `router` (a cheap handle clone; the caller keeps its own for direct
    /// inspection) until [`SocketServer::shutdown`] or drop.
    pub fn start(router: ConcurrentRouter, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = router
            .metrics()
            .map(|m| ServerMetrics::resolve(&m.registry));
        let shared = Arc::new(Shared {
            router,
            tickets: (0..config.ticket_shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            metrics,
            shutdown: AtomicBool::new(false),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            let poll = config.poll_interval;
            std::thread::spawn(move || accept_loop(listener, shared, poll))
        };
        Ok(Self {
            shared,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (the resolved port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router this server drives.
    pub fn router(&self) -> &ConcurrentRouter {
        &self.shared.router
    }

    /// Stops accepting, unblocks every handler at its next read timeout, and
    /// joins the acceptor. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Polls the non-blocking listener, spawning one handler thread per
/// connection, until shutdown. Handler threads are joined by the acceptor so
/// shutdown leaves no detached worker behind.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, poll: Duration) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, shared, poll)
                }));
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Serves one connection: reads `\n`-terminated request lines (tolerating
/// read timeouts, which double as shutdown checks) and writes one reply line
/// each. The connection's local latency histogram merges into the shared one
/// every [`MERGE_EVERY`] requests and once at close.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>, poll: Duration) {
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    // Replies are tiny; without nodelay Nagle + delayed ACK turns every
    // request/response round trip into a multi-millisecond stall.
    let _ = stream.set_nodelay(true);
    if let Some(metrics) = &shared.metrics {
        metrics.connections.inc();
    }
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut local_latency = LocalHistogram::new();
    let mut since_merge = 0u64;
    let mut route_keys: Vec<u64> = Vec::new();
    let mut reply_buf = String::new();
    'serve: loop {
        line.clear();
        // A read timeout mid-line leaves the partial line buffered in
        // `line`; looping `read_line` on the same buffer resumes it.
        let n = loop {
            match reader.read_line(&mut line) {
                Ok(n) => break n,
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::Acquire) {
                        merge_latency(&shared, &mut local_latency);
                        return;
                    }
                    if line.len() > MAX_LINE_LEN {
                        // An unterminated "line" already past the cap: a
                        // hostile or broken client must not balloon the
                        // buffer. Answer now, then drop bytes until its
                        // newline finally shows up.
                        if oversized_line(&shared, &mut reader, &mut writer, &mut line).is_err() {
                            merge_latency(&shared, &mut local_latency);
                            return;
                        }
                        continue 'serve;
                    }
                }
                Err(_) => {
                    merge_latency(&shared, &mut local_latency);
                    return;
                }
            }
        };
        if n == 0 {
            break; // EOF: client closed.
        }
        if !line.ends_with('\n') {
            // EOF mid-line (`read_line` only returns a newline-less line at
            // EOF): the request is truncated — the client may have died
            // halfway through writing it — so executing it would act on a
            // half-command. Drop it, visibly.
            if let Some(metrics) = &shared.metrics {
                metrics.bad_request.inc();
            }
            break;
        }
        if line.len() - 1 > MAX_LINE_LEN {
            // A complete but oversized line: one bad request, counted, and
            // the connection keeps serving.
            if let Some(metrics) = &shared.metrics {
                metrics.requests.inc();
                metrics.bad_request.inc();
            }
            if writer.write_all(b"ERR bad-request\n").is_err() {
                break;
            }
            continue;
        }
        reply_buf.clear();
        if let Some(key) = parse_route(line.trim_end()) {
            // Gather the pipelined `ROUTE` group: every complete line already
            // sitting in the read buffer joins (no extra I/O, no waiting);
            // the first non-ROUTE line ends the group and is answered after
            // it, in order.
            route_keys.clear();
            route_keys.push(key);
            let mut tail: Option<String> = None;
            while reader.buffer().contains(&b'\n') {
                line.clear();
                if reader.read_line(&mut line).is_err() {
                    break; // buffered data: cannot happen, but fail safe
                }
                match parse_route(line.trim_end()) {
                    Some(key) => route_keys.push(key),
                    None => {
                        tail = Some(line.trim_end().to_string());
                        break;
                    }
                }
            }
            if let Some(metrics) = &shared.metrics {
                metrics.requests.add(route_keys.len() as u64);
            }
            let start = Instant::now();
            let placements = shared
                .router
                .route_many(&route_keys)
                .expect("routing is infallible");
            let per_route = start.elapsed().as_nanos() as u64 / route_keys.len().max(1) as u64;
            for placement in placements {
                local_latency.record(per_route);
                reply_buf.push_str(&format!("OK {} {}\n", placement.bin, placement.ticket.id()));
                shared.park(placement.ticket);
            }
            since_merge += route_keys.len() as u64;
            if let Some(tail_line) = tail {
                reply_buf.push_str(&respond(&shared, &tail_line, &mut local_latency));
                reply_buf.push('\n');
                since_merge += 1;
            }
        } else {
            reply_buf.push_str(&respond(&shared, line.trim_end(), &mut local_latency));
            reply_buf.push('\n');
            since_merge += 1;
        }
        if since_merge >= MERGE_EVERY {
            merge_latency(&shared, &mut local_latency);
            since_merge = 0;
        }
        if writer.write_all(reply_buf.as_bytes()).is_err() {
            break;
        }
    }
    merge_latency(&shared, &mut local_latency);
}

/// Answers an unterminated-and-over-the-cap request line with
/// `ERR bad-request` and discards its bytes up to the next newline, keeping
/// the connection alive. `Err` means the connection is done (EOF or I/O
/// failure mid-discard) and the caller should close.
fn oversized_line(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &mut String,
) -> io::Result<()> {
    if let Some(metrics) = &shared.metrics {
        metrics.requests.inc();
        metrics.bad_request.inc();
    }
    writer.write_all(b"ERR bad-request\n")?;
    loop {
        line.clear();
        match reader.read_line(line) {
            // EOF while still inside the oversized line: nothing more to
            // serve (the truncated tail was already answered).
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(_) if line.ends_with('\n') => {
                line.clear();
                return Ok(());
            }
            Ok(_) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return Err(io::ErrorKind::Interrupted.into());
                }
                // Partial progress inside the discarded line: drop it and
                // keep scanning for the newline.
            }
            Err(err) => return Err(err),
        }
    }
}

/// `ROUTE <key>` with a valid key, or `None` (anything else goes through
/// [`respond`] one line at a time).
fn parse_route(line: &str) -> Option<u64> {
    let mut parts = line.split_ascii_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("ROUTE"), Some(key), None) => key.parse().ok(),
        _ => None,
    }
}

fn merge_latency(shared: &Shared, local: &mut LocalHistogram) {
    if let Some(metrics) = &shared.metrics {
        metrics.route_latency.merge_local(local);
    }
}

/// Executes one request line and renders the reply (without the newline).
fn respond(shared: &Shared, line: &str, latency: &mut LocalHistogram) -> String {
    if let Some(metrics) = &shared.metrics {
        metrics.requests.inc();
    }
    let mut parts = line.split_ascii_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("ROUTE"), Some(key), None) => match key.parse::<u64>() {
            Ok(key) => {
                let start = Instant::now();
                let placement = shared.router.route(key).expect("routing is infallible");
                latency.record(start.elapsed().as_nanos() as u64);
                let reply = format!("OK {} {}", placement.bin, placement.ticket.id());
                shared.park(placement.ticket);
                reply
            }
            Err(_) => bad_request(shared),
        },
        (Some("RELEASE"), Some(id), None) => match id.parse::<u64>() {
            Ok(id) => match shared.unpark(id) {
                Some(ticket) => {
                    let bin = ticket.bin();
                    match shared.router.release(ticket) {
                        Ok(()) => format!("OK {bin}"),
                        // The router's own `route.rejected_unknown_ticket`
                        // has already counted this.
                        Err(_) => unknown_ticket(shared),
                    }
                }
                // Never issued (or already released): the router never saw
                // it, so the server-side counter is its only trace.
                None => unknown_ticket(shared),
            },
            Err(_) => bad_request(shared),
        },
        (Some("ADD"), Some(weight), tier) => {
            // `ADD <weight> [tier]`: the optional tier is a power-of-two
            // capacity-class exponent; the staged bin gets weight
            // `weight·2^tier`. Every field validates strictly — a garbage
            // weight, a non-integer tier, a tier above `MAX_ADD_TIER`, or
            // trailing tokens are a bad request, counted and refused.
            let tier = match tier {
                None => Some(0u32),
                Some(t) => t.parse::<u32>().ok().filter(|&t| t <= MAX_ADD_TIER),
            };
            match (weight.parse::<f64>(), tier, parts.next()) {
                (Ok(weight), Some(tier), None) if weight.is_finite() && weight > 0.0 => {
                    let staged = weight * (1u64 << tier) as f64;
                    shared
                        .router
                        .stage_membership(MembershipPlan::new().add(staged));
                    "OK staged".to_string()
                }
                _ => bad_request(shared),
            }
        }
        (Some("DRAIN"), Some(bin), None) => match bin.parse::<u32>() {
            Ok(bin) => {
                shared
                    .router
                    .stage_membership(MembershipPlan::new().drain(bin));
                "OK staged".to_string()
            }
            Err(_) => bad_request(shared),
        },
        (Some("REMOVE"), Some(bin), None) => match bin.parse::<u32>() {
            Ok(bin) => {
                shared
                    .router
                    .stage_membership(MembershipPlan::new().remove(bin));
                "OK staged".to_string()
            }
            Err(_) => bad_request(shared),
        },
        (Some("MIGRATE"), None, None) => format!("OK {}", shared.router.migrate_drained()),
        (Some("FLUSH"), None, None) => format!("OK {}", shared.router.flush()),
        (Some("STATS"), None, None) => {
            let stats = shared.router.stats();
            format!(
                "OK routed {} released {} resident {} batches {}",
                stats.routed, stats.released, stats.resident, stats.batches
            )
        }
        _ => bad_request(shared),
    }
}

fn bad_request(shared: &Shared) -> String {
    if let Some(metrics) = &shared.metrics {
        metrics.bad_request.inc();
    }
    "ERR bad-request".to_string()
}

fn unknown_ticket(shared: &Shared) -> String {
    if let Some(metrics) = &shared.metrics {
        metrics.unknown_ticket.inc();
    }
    "ERR unknown-ticket".to_string()
}

/// A blocking line-protocol client for [`SocketServer`] — the test/benchmark
/// counterpart of the server (E17's load generators are `LineClient`s).
///
/// The typed helpers (`route`, `release`, …) render requests into an
/// internal reusable buffer and read replies through
/// [`LineClient::request_into`], so a steady-state route/release loop does
/// not allocate a fresh `String` per call.
#[derive(Debug)]
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Request-render buffer reused by the typed helpers.
    scratch: String,
    /// Reply buffer reused by the typed helpers.
    reply: String,
}

impl LineClient {
    /// Connects to a running server.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            scratch: String::new(),
            reply: String::new(),
        })
    }

    /// Sends one raw request line and returns the raw reply line (trimmed).
    /// Allocates a fresh `String` per call; hot loops should prefer
    /// [`LineClient::request_into`].
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        let mut reply = String::new();
        self.request_into(line, &mut reply)?;
        Ok(reply)
    }

    /// Sends one raw request line and reads the reply line (trimmed) into
    /// `reply`, reusing its capacity — the allocation-free form of
    /// [`LineClient::request`] for steady-state loops.
    pub fn request_into(&mut self, line: &str, reply: &mut String) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        reply.clear();
        let n = self.reader.read_line(reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        reply.truncate(reply.trim_end().len());
        Ok(())
    }

    /// Renders a request with `render`, round-trips it through the reusable
    /// scratch/reply buffers, and leaves the trimmed reply in `self.reply`.
    fn round_trip(&mut self, render: impl FnOnce(&mut String)) -> io::Result<()> {
        let line = {
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            render(&mut scratch);
            scratch
        };
        let mut reply = std::mem::take(&mut self.reply);
        let result = self.request_into(&line, &mut reply);
        self.scratch = line;
        self.reply = reply;
        result
    }

    /// `ROUTE key` → `(bin, id)`.
    pub fn route(&mut self, key: u64) -> io::Result<(usize, u64)> {
        use std::fmt::Write as _;
        self.round_trip(|line| {
            let _ = write!(line, "ROUTE {key}");
        })?;
        let reply = self.reply.as_str();
        let mut parts = reply.split_ascii_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("OK"), Some(bin), Some(id)) => match (bin.parse(), id.parse()) {
                (Ok(bin), Ok(id)) => Ok((bin, id)),
                _ => Err(protocol_error(reply)),
            },
            _ => Err(protocol_error(reply)),
        }
    }

    /// `RELEASE id` → `Some(bin)` on success, `None` for an unknown ticket.
    pub fn release(&mut self, id: u64) -> io::Result<Option<usize>> {
        use std::fmt::Write as _;
        self.round_trip(|line| {
            let _ = write!(line, "RELEASE {id}");
        })?;
        let reply = self.reply.as_str();
        if reply == "ERR unknown-ticket" {
            return Ok(None);
        }
        let mut parts = reply.split_ascii_whitespace();
        match (parts.next(), parts.next()) {
            (Some("OK"), Some(bin)) => bin.parse().map(Some).map_err(|_| protocol_error(reply)),
            _ => Err(protocol_error(reply)),
        }
    }

    /// `FLUSH` → batch boundaries produced.
    pub fn flush(&mut self) -> io::Result<usize> {
        let reply = self.request("FLUSH")?;
        match reply.strip_prefix("OK ") {
            Some(rest) => rest.parse().map_err(|_| protocol_error(&reply)),
            None => Err(protocol_error(&reply)),
        }
    }

    /// `ADD weight` — stage commissioning one bin.
    pub fn stage_add(&mut self, weight: f64) -> io::Result<()> {
        self.expect_staged(&format!("ADD {weight}"))
    }

    /// `ADD weight tier` — stage commissioning one bin of weight
    /// `weight·2^tier` (a power-of-two capacity class; see [`MAX_ADD_TIER`]).
    pub fn stage_add_tiered(&mut self, weight: f64, tier: u32) -> io::Result<()> {
        self.expect_staged(&format!("ADD {weight} {tier}"))
    }

    /// `DRAIN bin` — stage draining a bin out of the sampling set.
    pub fn stage_drain(&mut self, bin: u32) -> io::Result<()> {
        self.expect_staged(&format!("DRAIN {bin}"))
    }

    /// `REMOVE bin` — stage retiring a drained, empty bin.
    pub fn stage_remove(&mut self, bin: u32) -> io::Result<()> {
        self.expect_staged(&format!("REMOVE {bin}"))
    }

    /// `MIGRATE` → residents force-migrated off draining bins.
    pub fn migrate(&mut self) -> io::Result<u64> {
        let reply = self.request("MIGRATE")?;
        match reply.strip_prefix("OK ") {
            Some(rest) => rest.parse().map_err(|_| protocol_error(&reply)),
            None => Err(protocol_error(&reply)),
        }
    }

    fn expect_staged(&mut self, line: &str) -> io::Result<()> {
        let reply = self.request(line)?;
        if reply == "OK staged" {
            Ok(())
        } else {
            Err(protocol_error(&reply))
        }
    }
}

fn protocol_error(reply: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamConfig;
    use crate::policy::Policy;

    fn instrumented_server(bins: usize, batch: usize) -> SocketServer {
        let registry = Arc::new(pba_obs::MetricsRegistry::new());
        let router = ConcurrentRouter::with_metrics(
            StreamConfig::new(bins)
                .policy(Policy::TwoChoice)
                .batch_size(batch)
                .seed(11),
            registry,
        );
        SocketServer::start(router, ServerConfig::default()).expect("bind loopback")
    }

    #[test]
    fn route_release_round_trip_over_tcp() {
        let server = instrumented_server(32, 16);
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        let mut ids = Vec::new();
        for key in 0..48u64 {
            let (bin, id) = client.route(key).unwrap();
            assert!(bin < 32);
            ids.push(id);
        }
        assert_eq!(server.router().resident(), 48);
        for id in ids {
            assert!(client.release(id).unwrap().is_some());
        }
        assert_eq!(server.router().resident(), 0);
        assert!(server.router().conserves_balls());
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("route.routed"), 48);
        assert_eq!(snap.counter("route.released"), 48);
        assert_eq!(snap.counter("server.requests"), 96);
        assert_eq!(snap.counter("server.connections"), 1);
        // 48 routes crossed the 16-batch boundary three times.
        assert_eq!(snap.counter("router.stream_batches"), 3);
        let latency = snap.histogram("server.route_latency_ns").expect("recorded");
        assert_eq!(latency.count, 48);
    }

    #[test]
    fn unknown_tickets_and_bad_requests_are_counted_not_dropped() {
        let server = instrumented_server(8, 8);
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.release(99_999).unwrap(), None);
        assert_eq!(client.request("NONSENSE line").unwrap(), "ERR bad-request");
        assert_eq!(
            client.request("ROUTE notanumber").unwrap(),
            "ERR bad-request"
        );
        let (bin, id) = client.route(7).unwrap();
        assert!(client.release(id).unwrap().is_some());
        // Double release: the server no longer holds the ticket.
        assert_eq!(client.release(id).unwrap(), None);
        let _ = bin;
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.unknown_ticket"), 2);
        assert_eq!(snap.counter("server.bad_request"), 2);
    }

    #[test]
    fn concurrent_clients_share_one_router() {
        let server = instrumented_server(64, 32);
        let addr = server.local_addr();
        let mut threads = Vec::new();
        for t in 0..4u64 {
            threads.push(std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).unwrap();
                let mut ids = Vec::new();
                for i in 0..100 {
                    ids.push(client.route(t * 1_000 + i).unwrap().1);
                }
                for id in ids {
                    assert!(client.release(id).unwrap().is_some());
                }
            }));
        }
        for thread in threads {
            thread.join().unwrap();
        }
        let mut client = LineClient::connect(addr).unwrap();
        let stats = client.request("STATS").unwrap();
        assert!(
            stats.starts_with("OK routed 400 released 400 resident 0"),
            "{stats}"
        );
        assert!(server.router().conserves_balls());
        server.shutdown();
    }

    #[test]
    fn empty_and_oversized_request_lines_get_bad_request_not_a_hangup() {
        let server = instrumented_server(8, 8);
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        // An empty line is a request like any other: one reply, counted.
        assert_eq!(client.request("").unwrap(), "ERR bad-request");
        // A key that overflows u64 must not panic the parser.
        assert_eq!(
            client.request("ROUTE 99999999999999999999999").unwrap(),
            "ERR bad-request"
        );
        // Whitespace-only and trailing-garbage lines too.
        assert_eq!(client.request("   ").unwrap(), "ERR bad-request");
        assert_eq!(client.request("ROUTE 1 2").unwrap(), "ERR bad-request");
        // The connection is still healthy afterwards.
        let (_bin, id) = client.route(5).unwrap();
        assert!(client.release(id).unwrap().is_some());
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.bad_request"), 4);
        assert_eq!(snap.counter("route.routed"), 1);
    }

    #[test]
    fn mid_line_disconnect_leaves_the_server_serving() {
        let server = instrumented_server(8, 8);
        let addr = server.local_addr();
        {
            // A raw client that dies halfway through a request line: the
            // unterminated tail is a truncated request (the client may have
            // meant "ROUTE 1234"), so the handler must drop it — counted,
            // not executed — and close its side.
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"ROUTE 123").unwrap(); // no newline
            raw.flush().unwrap();
        } // dropped: mid-line disconnect
          // A fresh client on the same server still gets served.
        let mut client = LineClient::connect(addr).unwrap();
        let (_bin, id) = client.route(9).unwrap();
        assert!(client.release(id).unwrap().is_some());
        // The half-request was never executed: exactly one ball routed, and
        // the truncated line left its trace in the bad-request counter.
        assert_eq!(server.router().stats().routed, 1);
        assert!(server.router().conserves_balls());
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        assert_eq!(registry.snapshot().counter("server.bad_request"), 1);
    }

    #[test]
    fn pipelined_requests_get_one_reply_each_in_order() {
        let server = instrumented_server(16, 8);
        let addr = server.local_addr();
        // Write a whole pipeline of requests before reading any reply —
        // the handler must answer them one line each, in order.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        raw.write_all(b"ROUTE 1\nROUTE 2\nNONSENSE\nSTATS\nFLUSH\n")
            .unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut replies = Vec::new();
        for _ in 0..5 {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            replies.push(line.trim_end().to_string());
        }
        assert!(replies[0].starts_with("OK "), "{}", replies[0]);
        assert!(replies[1].starts_with("OK "), "{}", replies[1]);
        assert_eq!(replies[2], "ERR bad-request");
        assert!(
            replies[3].starts_with("OK routed 2 released 0 resident 2"),
            "{}",
            replies[3]
        );
        assert_eq!(replies[4], "OK 1", "flush closes the 2-ball open batch");
        assert_eq!(server.router().stats().routed, 2);
        server.shutdown();
    }

    #[test]
    fn membership_verbs_drive_a_scale_cycle_over_the_wire() {
        use pba_membership::BinState;
        let registry = Arc::new(pba_obs::MetricsRegistry::new());
        let router = ConcurrentRouter::with_metrics(
            StreamConfig::new(8)
                .policy(Policy::TwoChoice)
                .batch_size(8)
                .seed(11)
                .reserve_bins(1),
            registry,
        );
        let server = SocketServer::start(router, ServerConfig::default()).expect("bind loopback");
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        let mut ids = Vec::new();
        for key in 0..32u64 {
            ids.push(client.route(key).unwrap());
        }
        // Drain bin 3 and commission a replacement; the plan applies at the
        // boundary the next full batch produces.
        client.stage_drain(3).unwrap();
        client.stage_add(1.0).unwrap();
        for key in 100..108u64 {
            client.route(key).unwrap();
        }
        client.flush().unwrap();
        let states = server.router().bin_states().expect("elastic now");
        assert_eq!(states[3], BinState::Draining);
        assert_eq!(states[8], BinState::Active, "commissioned reserve slot");
        // Routes no longer land on the draining bin; migration empties it.
        let migrated = client.migrate().unwrap();
        assert_eq!(server.router().tickets_in(3), 0);
        assert_eq!(server.router().load(3), 0);
        // Now empty, the remove is legal at the next boundary.
        client.stage_remove(3).unwrap();
        for key in 200..208u64 {
            client.route(key).unwrap();
        }
        client.flush().unwrap();
        assert_eq!(server.router().bin_states().unwrap()[3], BinState::Retired);
        // Every parked ticket still redeems, migrated or not.
        for (_, id) in ids {
            assert!(client.release(id).unwrap().is_some());
        }
        assert!(server.router().conserves_balls());
        // Bad membership requests are counted, not executed.
        assert_eq!(client.request("ADD -1").unwrap(), "ERR bad-request");
        assert_eq!(client.request("DRAIN x").unwrap(), "ERR bad-request");
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("membership.drains"), 1);
        assert_eq!(snap.counter("membership.adds"), 1);
        assert_eq!(snap.counter("membership.removes"), 1);
        assert_eq!(snap.counter("membership.migrations"), migrated);
        assert_eq!(snap.counter("server.bad_request"), 2);
    }

    #[test]
    fn pipelined_routes_batch_through_route_many_and_stay_ordered() {
        // A whole pipeline of ROUTE lines written before reading any reply
        // executes as one `route_many` group; replies come back one per
        // line, in order, with distinct ids, and the router sees every ball.
        let server = instrumented_server(32, 16);
        let addr = server.local_addr();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        let mut request = String::new();
        for key in 0..40u64 {
            request.push_str(&format!("ROUTE {key}\n"));
        }
        request.push_str("STATS\n");
        raw.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut ids = std::collections::HashSet::new();
        for i in 0..40 {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            let mut parts = line.split_ascii_whitespace();
            assert_eq!(parts.next(), Some("OK"), "reply {i}: {line}");
            let bin: usize = parts.next().unwrap().parse().unwrap();
            assert!(bin < 32);
            assert!(ids.insert(parts.next().unwrap().parse::<u64>().unwrap()));
        }
        let mut stats = String::new();
        assert!(reader.read_line(&mut stats).unwrap() > 0);
        assert!(
            stats.starts_with("OK routed 40 released 0 resident 40"),
            "{stats}"
        );
        // Full 16-ball batches closed exactly as a one-at-a-time client
        // would close them: ⌊40/16⌋ = 2 boundaries.
        assert_eq!(server.router().batches(), 2);
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("route.routed"), 40);
        // Every grouped route is still one request and one latency sample.
        assert_eq!(snap.counter("server.requests"), 41);
        let latency = snap.histogram("server.route_latency_ns").expect("recorded");
        assert_eq!(latency.count, 40);
    }

    #[test]
    fn add_verb_accepts_a_tier_and_rejects_garbage() {
        let registry = Arc::new(pba_obs::MetricsRegistry::new());
        let router = ConcurrentRouter::with_metrics(
            StreamConfig::new(8)
                .policy(Policy::TwoChoice)
                .batch_size(8)
                .seed(11)
                .reserve_bins(1),
            registry,
        );
        let server = SocketServer::start(router, ServerConfig::default()).expect("bind loopback");
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        // Tiered add: weight 1.5 in capacity class 2^3 stages weight 12.
        client.stage_add_tiered(1.5, 3).unwrap();
        for key in 0..4u64 {
            client.route(key).unwrap();
        }
        client.flush().unwrap();
        assert_eq!(
            server.router().slot_weight(8),
            12.0,
            "staged weight is weight·2^tier"
        );
        // Tier validation: non-integer, negative, oversized, and trailing
        // garbage are all bad requests — counted, never staged.
        for garbage in [
            "ADD 1.0 x",
            "ADD 1.0 -2",
            "ADD 1.0 33",
            "ADD 1.0 2 extra",
            "ADD nope 2",
        ] {
            assert_eq!(
                client.request(garbage).unwrap(),
                "ERR bad-request",
                "{garbage}"
            );
        }
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.bad_request"), 5);
        assert_eq!(snap.counter("membership.adds"), 1);
    }

    #[test]
    fn oversized_request_lines_get_bad_request_and_the_connection_survives() {
        let server = instrumented_server(8, 8);
        let addr = server.local_addr();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        // Case 1: a complete oversized line, newline included.
        let mut big = vec![b'x'; MAX_LINE_LEN * 2];
        big.push(b'\n');
        raw.write_all(&big).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        assert_eq!(line.trim_end(), "ERR bad-request");
        // Case 2: an unterminated oversized line whose newline arrives much
        // later. The handler's read-timeout check answers it from the cap
        // and discards up to the newline; either way the connection keeps
        // serving the ROUTE that follows.
        raw.write_all(&vec![b'y'; MAX_LINE_LEN * 2]).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        raw.write_all(b"tail\nROUTE 5\n").unwrap();
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        assert_eq!(line.trim_end(), "ERR bad-request");
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        assert!(line.starts_with("OK "), "{line}");
        assert_eq!(server.router().stats().routed, 1);
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        assert_eq!(registry.snapshot().counter("server.bad_request"), 2);
    }

    #[test]
    fn request_into_reuses_the_reply_buffer() {
        let server = instrumented_server(8, 8);
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        let mut reply = String::new();
        client.request_into("ROUTE 1", &mut reply).unwrap();
        assert!(reply.starts_with("OK "), "{reply}");
        let warmed = reply.capacity();
        client.request_into("STATS", &mut reply).unwrap();
        assert!(reply.starts_with("OK routed 1"), "{reply}");
        client.request_into("FLUSH", &mut reply).unwrap();
        assert_eq!(reply, "OK 1");
        assert!(
            reply.capacity() >= warmed,
            "the reply buffer must be reused, never shrunk"
        );
        server.shutdown();
    }

    #[test]
    fn flush_closes_the_open_partial_batch() {
        let server = instrumented_server(16, 64);
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        for key in 0..10u64 {
            client.route(key).unwrap();
        }
        assert_eq!(client.flush().unwrap(), 1);
        assert_eq!(server.router().batches(), 1);
        server.shutdown();
    }
}
