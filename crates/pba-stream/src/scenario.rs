//! Scenario driver: an arrival process, optional churn, and a policy, run for
//! a fixed number of ticks.
//!
//! This is the piece that turns the incremental [`StreamAllocator`] API into
//! end-to-end experiments: each tick pushes the process's arrivals, drains
//! every full batch, and (after a warm-up) retires residents at a configurable
//! churn rate, sampling departures uniformly over *resident balls* (i.e. a bin
//! is hit proportionally to its load, the standard M/M/∞-style service model).

use pba_model::rng::SplitMix64;

use crate::arrival::{ArrivalProcess, ArrivalSampler};
use crate::engine::{StreamAllocator, StreamConfig};

/// Stream used for arrival-key randomness.
const ARRIVAL_STREAM: u64 = 0xa331_7a15;
/// Stream used for departure randomness.
const DEPART_STREAM: u64 = 0xdea9_0b75;

/// A complete streaming scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Ticks to simulate.
    pub ticks: u64,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Expected departures per arrival once warm-up has passed (`0.0` = pure
    /// growth; `1.0` = steady state).
    pub churn: f64,
    /// Ticks before churn starts (lets the system fill up first).
    pub warmup_ticks: u64,
    /// Whether to flush the final partial batch at the end of the run.
    pub flush_at_end: bool,
}

impl ScenarioConfig {
    /// A growth-only scenario: `ticks` ticks of the given arrivals, no churn.
    pub fn growth(ticks: u64, arrivals: ArrivalProcess) -> Self {
        Self {
            ticks,
            arrivals,
            churn: 0.0,
            warmup_ticks: 0,
            flush_at_end: true,
        }
    }

    /// Adds churn after a warm-up period (builder style).
    pub fn with_churn(mut self, churn: f64, warmup_ticks: u64) -> Self {
        self.churn = churn;
        self.warmup_ticks = warmup_ticks;
        self
    }
}

/// Outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The allocator in its final state (loads, stats, trajectory).
    pub stream: StreamAllocator,
    /// Total arrivals generated.
    pub arrived: u64,
    /// Total departures executed.
    pub departed: u64,
    /// Gap after the final batch (`0` when no batch was drained).
    pub final_gap: f64,
    /// Maximum gap observed at any batch boundary.
    pub max_gap: f64,
    /// Mean gap over all batch boundaries.
    pub mean_gap: f64,
}

/// Runs `scenario` on a fresh [`StreamAllocator`] built from `config`.
pub fn run_scenario(scenario: &ScenarioConfig, config: StreamConfig) -> ScenarioReport {
    let seed = config.seed;
    let n = config.bins;
    let mut stream = StreamAllocator::new(config);
    let sampler = ArrivalSampler::new(scenario.arrivals.clone());
    let mut key_rng = SplitMix64::for_stream(seed, ARRIVAL_STREAM, 0);
    let mut depart_rng = SplitMix64::for_stream(seed, DEPART_STREAM, 0);
    // Fractional churn accumulates across ticks so e.g. 0.5 retires one ball
    // every other arrival on average.
    let mut churn_credit = 0.0f64;

    for tick in 0..scenario.ticks {
        let arrivals = sampler.arrivals_at(tick);
        for _ in 0..arrivals {
            stream.push(sampler.sample_key(&mut key_rng));
        }
        stream.drain_ready();

        if scenario.churn > 0.0 && tick >= scenario.warmup_ticks {
            churn_credit += scenario.churn * arrivals as f64;
            if churn_credit >= 1.0 && stream.resident() > 0 {
                // One O(n) Fenwick build per tick, then O(log n) per
                // departure — the per-departure linear scan would make churn
                // cost O(departures · n).
                let mut tree = LoadTree::build_from(&stream, n);
                while churn_credit >= 1.0 && tree.total() > 0 {
                    churn_credit -= 1.0;
                    let bin = tree.sample_and_remove(depart_rng.gen_range(tree.total()));
                    let departed = stream.depart(bin);
                    debug_assert!(departed, "tree tracked a ball the stream lacks");
                }
            }
        }
    }
    if scenario.flush_at_end {
        stream.flush();
    }

    let trajectory = stream.gap_trajectory();
    let final_gap = trajectory.last().copied().unwrap_or(0.0);
    let max_gap = stream.gap_stats().max();
    let max_gap = if max_gap.is_nan() { 0.0 } else { max_gap };
    let mean_gap = stream.gap_stats().mean();
    let snapshot = stream.snapshot();
    ScenarioReport {
        arrived: snapshot.arrived,
        departed: snapshot.departed,
        final_gap,
        max_gap,
        mean_gap,
        stream,
    }
}

/// Fenwick (binary indexed) tree over per-bin loads, used to sample a
/// departing ball uniformly over residents: bin `i` is drawn with probability
/// `load_i / total`, in `O(log n)` per draw after an `O(n)` build.
struct LoadTree {
    /// 1-based Fenwick array of partial sums.
    tree: Vec<u64>,
    total: u64,
}

impl LoadTree {
    fn build_from(stream: &StreamAllocator, n: usize) -> Self {
        let mut tree = vec![0u64; n + 1];
        for bin in 0..n {
            tree[bin + 1] += stream.load(bin) as u64;
            let parent = (bin + 1) + ((bin + 1) & (bin + 1).wrapping_neg());
            if parent <= n {
                let v = tree[bin + 1];
                tree[parent] += v;
            }
        }
        Self {
            total: stream.resident(),
            tree,
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    /// Finds the bin holding the `target`-th resident ball (0-based over the
    /// cumulative load order) and removes one ball from it in the tree.
    fn sample_and_remove(&mut self, mut target: u64) -> usize {
        debug_assert!(target < self.total);
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut mask = n.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= n && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        // `pos` is the count of bins whose cumulative load is ≤ target, i.e.
        // the 0-based bin index to depart from.
        let bin = pos;
        let mut idx = bin + 1;
        while idx <= n {
            self.tree[idx] -= 1;
            idx += idx & idx.wrapping_neg();
        }
        self.total -= 1;
        bin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    #[test]
    fn growth_scenario_allocates_every_arrival() {
        let scenario = ScenarioConfig::growth(
            50,
            ArrivalProcess::Uniform {
                keys: crate::arrival::UNIQUE_KEYS,
                rate: 40,
            },
        );
        let report = run_scenario(&scenario, StreamConfig::new(64).batch_size(100).seed(1));
        assert_eq!(report.arrived, 2000);
        assert_eq!(report.departed, 0);
        assert_eq!(report.stream.resident(), 2000);
        assert!(report.stream.conserves_balls());
        assert!(report.final_gap >= 0.0);
        assert!(report.max_gap >= report.final_gap);
    }

    #[test]
    fn steady_state_churn_keeps_population_bounded() {
        let scenario = ScenarioConfig::growth(
            400,
            ArrivalProcess::Uniform {
                keys: crate::arrival::UNIQUE_KEYS,
                rate: 64,
            },
        )
        .with_churn(1.0, 100);
        let report = run_scenario(&scenario, StreamConfig::new(64).batch_size(64).seed(2));
        assert!(report.departed > 0);
        assert!(report.stream.conserves_balls());
        // Population ≈ warm-up intake; certainly far below total arrivals.
        let resident = report.stream.resident();
        assert!(
            resident < report.arrived / 2,
            "churn failed to retire balls: {resident} of {}",
            report.arrived
        );
    }

    #[test]
    fn bursty_arrivals_are_all_drained() {
        let scenario = ScenarioConfig::growth(
            60,
            ArrivalProcess::Bursty {
                keys: 1024,
                base_rate: 16,
                burst_every: 10,
                burst_len: 3,
                burst_mult: 8,
            },
        );
        let report = run_scenario(&scenario, StreamConfig::new(32).batch_size(64).seed(3));
        // 60 ticks: per window of 10 → 3·128 + 7·16 = 496; 6 windows = 2976.
        assert_eq!(report.arrived, 2976);
        assert_eq!(report.stream.pending(), 0);
        assert_eq!(report.stream.resident(), 2976);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let scenario = ScenarioConfig::growth(
            100,
            ArrivalProcess::Zipf {
                keys: 512,
                exponent: 1.1,
                rate: 32,
            },
        )
        .with_churn(0.5, 20);
        let run = || {
            let r = run_scenario(
                &scenario,
                StreamConfig::new(64)
                    .policy(Policy::TwoChoice)
                    .batch_size(128)
                    .seed(9),
            );
            (r.stream.loads(), r.departed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn load_tree_sampling_matches_linear_scan_reference() {
        let mut stream = StreamAllocator::new(StreamConfig::new(16).batch_size(16).seed(5));
        for k in 0..200u64 {
            stream.push(k);
        }
        stream.flush();
        let loads = stream.loads();
        let total: u64 = loads.iter().map(|&l| l as u64).sum();
        for target in 0..total {
            let mut tree = LoadTree::build_from(&stream, 16);
            assert_eq!(tree.total(), total);
            let bin = tree.sample_and_remove(target);
            // Linear reference: first bin whose cumulative load exceeds target.
            let mut t = target;
            let expected = loads
                .iter()
                .position(|&l| {
                    if t < l as u64 {
                        true
                    } else {
                        t -= l as u64;
                        false
                    }
                })
                .unwrap();
            assert_eq!(bin, expected, "target {target}");
            assert_eq!(tree.total(), total - 1);
        }
    }

    #[test]
    fn two_choice_beats_one_choice_under_zipf() {
        let scenario = ScenarioConfig::growth(
            200,
            ArrivalProcess::Zipf {
                keys: 1 << 14,
                exponent: 0.9,
                rate: 256,
            },
        );
        let base = StreamConfig::new(256).batch_size(512).seed(4);
        let one = run_scenario(&scenario, base.clone().policy(Policy::OneChoice));
        let two = run_scenario(&scenario, base.policy(Policy::TwoChoice));
        assert!(
            two.final_gap < one.final_gap,
            "two-choice {} vs one-choice {}",
            two.final_gap,
            one.final_gap
        );
    }
}
