//! Scenario driver: an arrival process, optional churn, and a policy, run for
//! a fixed number of ticks.
//!
//! This is the piece that turns the incremental [`StreamAllocator`] API into
//! end-to-end experiments: each tick **routes** the process's arrivals
//! through the handle-based router surface (batch boundaries advance
//! automatically every `batch_size` placements, exactly as a `push` + drain
//! loop would) and, after a warm-up, retires residents at a configurable
//! churn rate by **releasing their tickets**. Two service models are
//! supported ([`ChurnMode`]):
//!
//! * [`ChurnMode::LoadProportional`] — a departing ball is drawn uniformly
//!   over *residents*, so a bin is hit proportionally to its load (the
//!   standard M/M/∞-style model).
//! * [`ChurnMode::CapacityProportional`] — the departing bin is drawn
//!   proportionally to its **weight**: big backends drain connections faster,
//!   the service-rate-∝-capacity model heterogeneous fleets actually exhibit.
//!   Under uniform weights this degrades to a uniformly random (non-empty)
//!   bin.

use pba_model::rng::SplitMix64;

use crate::arrival::{ArrivalProcess, ArrivalSampler};
use crate::engine::{StreamAllocator, StreamConfig};

/// Stream used for arrival-key randomness.
const ARRIVAL_STREAM: u64 = 0xa331_7a15;
/// Stream used for departure randomness.
const DEPART_STREAM: u64 = 0xdea9_0b75;

/// How churn picks the ball that departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChurnMode {
    /// Departures sample uniformly over resident balls: a bin is hit
    /// proportionally to its load (M/M/∞-style service).
    #[default]
    LoadProportional,
    /// The departing bin is sampled proportionally to its **weight** (service
    /// rate ∝ capacity); one of that bin's resident tickets is released.
    /// Empty draws retry a bounded number of times, then fall back to the
    /// nearest non-empty bin, so the draw always terminates.
    CapacityProportional,
}

impl ChurnMode {
    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Self::LoadProportional => "load-prop",
            Self::CapacityProportional => "capacity-prop",
        }
    }
}

/// A complete streaming scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Ticks to simulate.
    pub ticks: u64,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Expected departures per arrival once warm-up has passed (`0.0` = pure
    /// growth; `1.0` = steady state).
    pub churn: f64,
    /// Which resident departs when churn strikes.
    pub churn_mode: ChurnMode,
    /// Ticks before churn starts (lets the system fill up first).
    pub warmup_ticks: u64,
    /// Whether to close the final partial batch at the end of the run (so its
    /// boundary is recorded in the gap trajectory).
    pub flush_at_end: bool,
}

impl ScenarioConfig {
    /// A growth-only scenario: `ticks` ticks of the given arrivals, no churn.
    pub fn growth(ticks: u64, arrivals: ArrivalProcess) -> Self {
        Self {
            ticks,
            arrivals,
            churn: 0.0,
            churn_mode: ChurnMode::default(),
            warmup_ticks: 0,
            flush_at_end: true,
        }
    }

    /// Adds churn after a warm-up period (builder style).
    pub fn with_churn(mut self, churn: f64, warmup_ticks: u64) -> Self {
        self.churn = churn;
        self.warmup_ticks = warmup_ticks;
        self
    }

    /// Selects how churn picks departing balls (builder style).
    pub fn with_churn_mode(mut self, mode: ChurnMode) -> Self {
        self.churn_mode = mode;
        self
    }
}

/// Outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The allocator in its final state (loads, stats, trajectory).
    pub stream: StreamAllocator,
    /// Total arrivals generated.
    pub arrived: u64,
    /// Total departures executed.
    pub departed: u64,
    /// Gap after the final batch (`0` when no batch was drained).
    pub final_gap: f64,
    /// Maximum gap observed at any batch boundary.
    pub max_gap: f64,
    /// Mean gap over all batch boundaries.
    pub mean_gap: f64,
}

/// Runs `scenario` on a fresh [`StreamAllocator`] built from `config`.
pub fn run_scenario(scenario: &ScenarioConfig, config: StreamConfig) -> ScenarioReport {
    run_scenario_on(scenario, StreamAllocator::new(config))
}

/// Runs `scenario` on an already-constructed [`StreamAllocator`] — the entry
/// point to use when observers must be attached (or state pre-seeded) before
/// the run. The stream should be freshly constructed; arrival and departure
/// randomness derive from its configured seed.
pub fn run_scenario_on(scenario: &ScenarioConfig, mut stream: StreamAllocator) -> ScenarioReport {
    let seed = stream.config().seed;
    let n = stream.config().bins;
    let sampler = ArrivalSampler::new(scenario.arrivals.clone());
    let mut key_rng = SplitMix64::for_stream(seed, ARRIVAL_STREAM, 0);
    let mut depart_rng = SplitMix64::for_stream(seed, DEPART_STREAM, 0);
    // Fractional churn accumulates across ticks so e.g. 0.5 retires one ball
    // every other arrival on average.
    let mut churn_credit = 0.0f64;

    for tick in 0..scenario.ticks {
        let arrivals = sampler.arrivals_at(tick);
        for _ in 0..arrivals {
            let key = sampler.sample_key(&mut key_rng);
            stream.route(key).expect("streaming route is infallible");
        }

        if scenario.churn > 0.0 && tick >= scenario.warmup_ticks {
            churn_credit += scenario.churn * arrivals as f64;
            match scenario.churn_mode {
                ChurnMode::LoadProportional => {
                    if churn_credit >= 1.0 && stream.resident_tickets() > 0 {
                        // One O(n) Fenwick build per tick, then O(log n) per
                        // departure — the per-departure linear scan would make
                        // churn cost O(departures · n).
                        let mut tree = LoadTree::build_from(&stream, n);
                        while churn_credit >= 1.0 && tree.total() > 0 {
                            churn_credit -= 1.0;
                            let bin = tree.sample_and_remove(depart_rng.gen_range(tree.total()));
                            release_resident_in(&mut stream, bin);
                        }
                    }
                }
                ChurnMode::CapacityProportional => {
                    // Track the releasable count locally: `resident_tickets`
                    // is cheap, but the loop should not re-query per step.
                    let mut residents = stream.resident_tickets() as u64;
                    while churn_credit >= 1.0 && residents > 0 {
                        churn_credit -= 1.0;
                        residents -= 1;
                        let bin = sample_capacity_bin(&stream, &mut depart_rng, n);
                        release_resident_in(&mut stream, bin);
                    }
                }
            }
        }
    }
    if scenario.flush_at_end {
        stream.flush();
    }

    let trajectory = stream.gap_trajectory();
    let final_gap = trajectory.last().copied().unwrap_or(0.0);
    let max_gap = stream.gap_stats().max();
    let max_gap = if max_gap.is_nan() { 0.0 } else { max_gap };
    let mean_gap = stream.gap_stats().mean();
    let snapshot = stream.snapshot();
    ScenarioReport {
        arrived: snapshot.arrived,
        departed: snapshot.departed,
        final_gap,
        max_gap,
        mean_gap,
        stream,
    }
}

/// Releases a resident of `bin` (the churn samplers only propose bins with
/// resident *tickets*, so one always exists; which resident is
/// arbitrary-but-deterministic — balls are exchangeable for every load-level
/// property).
fn release_resident_in(stream: &mut StreamAllocator, bin: usize) {
    let ticket = stream
        .ticket_in(bin)
        .expect("churn chose a bin without resident tickets");
    stream
        .release(ticket)
        .expect("ticket was just read from the ledger");
}

/// Draws the departing bin with probability proportional to its weight
/// (uniformly when the stream is unweighted). A drawn ticketless bin is
/// redrawn up to [`MAX_EMPTY_DRAWS`] times — under pathological skew the
/// heavy bins may all be empty — after which the draw falls forward
/// cyclically to the first bin holding a ticket, so the sample always
/// terminates in O(n) worst case while staying a pure function of the RNG
/// stream. Only *ticketed* residents are releasable, so the ledger, not the
/// raw load, decides eligibility (a pre-seeded engine may hold anonymous
/// balls on top).
fn sample_capacity_bin(stream: &StreamAllocator, rng: &mut SplitMix64, n: usize) -> usize {
    debug_assert!(stream.resident_tickets() > 0);
    let mut bin = 0usize;
    for _ in 0..MAX_EMPTY_DRAWS {
        bin = match stream.weights() {
            Some(weights) => weights.sample(rng) as usize,
            None => rng.gen_index(n),
        };
        if stream.tickets_in(bin) > 0 {
            return bin;
        }
    }
    (0..n)
        .map(|step| (bin + step) % n)
        .find(|&candidate| stream.tickets_in(candidate) > 0)
        .expect("resident_tickets > 0 guarantees a ticketed bin")
}

/// Ticketless-bin redraws tolerated by [`sample_capacity_bin`] before it
/// falls forward to the nearest bin holding a ticket.
const MAX_EMPTY_DRAWS: usize = 64;

/// Fenwick (binary indexed) tree over per-bin **resident-ticket** counts,
/// used to sample a departing ball uniformly over the releasable residents:
/// bin `i` is drawn with probability `tickets_i / total`, in `O(log n)` per
/// draw after an `O(n)` build. For a stream whose balls were all routed (the
/// scenario driver's own arrivals) this is identical to sampling by load;
/// anonymous residents of a pre-seeded engine are excluded — they cannot be
/// released.
struct LoadTree {
    /// 1-based Fenwick array of partial sums.
    tree: Vec<u64>,
    total: u64,
}

impl LoadTree {
    fn build_from(stream: &StreamAllocator, n: usize) -> Self {
        let mut tree = vec![0u64; n + 1];
        let mut total = 0u64;
        for bin in 0..n {
            let tickets = stream.tickets_in(bin) as u64;
            total += tickets;
            tree[bin + 1] += tickets;
            let parent = (bin + 1) + ((bin + 1) & (bin + 1).wrapping_neg());
            if parent <= n {
                let v = tree[bin + 1];
                tree[parent] += v;
            }
        }
        Self { total, tree }
    }

    fn total(&self) -> u64 {
        self.total
    }

    /// Finds the bin holding the `target`-th resident ball (0-based over the
    /// cumulative load order) and removes one ball from it in the tree.
    fn sample_and_remove(&mut self, mut target: u64) -> usize {
        debug_assert!(target < self.total);
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut mask = n.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= n && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        // `pos` is the count of bins whose cumulative load is ≤ target, i.e.
        // the 0-based bin index to depart from.
        let bin = pos;
        let mut idx = bin + 1;
        while idx <= n {
            self.tree[idx] -= 1;
            idx += idx & idx.wrapping_neg();
        }
        self.total -= 1;
        bin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    #[test]
    fn growth_scenario_allocates_every_arrival() {
        let scenario = ScenarioConfig::growth(
            50,
            ArrivalProcess::Uniform {
                keys: crate::arrival::UNIQUE_KEYS,
                rate: 40,
            },
        );
        let report = run_scenario(&scenario, StreamConfig::new(64).batch_size(100).seed(1));
        assert_eq!(report.arrived, 2000);
        assert_eq!(report.departed, 0);
        assert_eq!(report.stream.resident(), 2000);
        assert!(report.stream.conserves_balls());
        assert!(report.final_gap >= 0.0);
        assert!(report.max_gap >= report.final_gap);
    }

    #[test]
    fn churn_on_a_preseeded_engine_only_releases_ticketed_balls() {
        // A pre-seeded engine holds anonymous residents (no tickets); churn
        // must sample over the ticket ledger, not raw loads, or it would pick
        // a bin whose load is anonymous-only and panic. Both churn modes.
        for mode in [ChurnMode::LoadProportional, ChurnMode::CapacityProportional] {
            let n = 32usize;
            let seeded_loads = vec![4u32; n]; // 128 anonymous residents
            let stream = StreamAllocator::with_resident_loads(
                StreamConfig::new(n).batch_size(16).seed(5),
                &seeded_loads,
            );
            let scenario = ScenarioConfig::growth(
                120,
                ArrivalProcess::Uniform {
                    keys: crate::arrival::UNIQUE_KEYS,
                    rate: 8,
                },
            )
            .with_churn(1.0, 10)
            .with_churn_mode(mode);
            let report = run_scenario_on(&scenario, stream);
            assert!(report.departed > 0, "churn must run ({mode:?})");
            assert!(report.stream.conserves_balls());
            // The anonymous seed population is untouchable: residents can
            // never drop below it.
            assert!(
                report.stream.resident() >= 128,
                "anonymous residents were released ({mode:?})"
            );
        }
    }

    #[test]
    fn steady_state_churn_keeps_population_bounded() {
        let scenario = ScenarioConfig::growth(
            400,
            ArrivalProcess::Uniform {
                keys: crate::arrival::UNIQUE_KEYS,
                rate: 64,
            },
        )
        .with_churn(1.0, 100);
        let report = run_scenario(&scenario, StreamConfig::new(64).batch_size(64).seed(2));
        assert!(report.departed > 0);
        assert!(report.stream.conserves_balls());
        // Population ≈ warm-up intake; certainly far below total arrivals.
        let resident = report.stream.resident();
        assert!(
            resident < report.arrived / 2,
            "churn failed to retire balls: {resident} of {}",
            report.arrived
        );
    }

    #[test]
    fn bursty_arrivals_are_all_drained() {
        let scenario = ScenarioConfig::growth(
            60,
            ArrivalProcess::Bursty {
                keys: 1024,
                base_rate: 16,
                burst_every: 10,
                burst_len: 3,
                burst_mult: 8,
            },
        );
        let report = run_scenario(&scenario, StreamConfig::new(32).batch_size(64).seed(3));
        // 60 ticks: per window of 10 → 3·128 + 7·16 = 496; 6 windows = 2976.
        assert_eq!(report.arrived, 2976);
        assert_eq!(report.stream.pending(), 0);
        assert_eq!(report.stream.resident(), 2976);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let scenario = ScenarioConfig::growth(
            100,
            ArrivalProcess::Zipf {
                keys: 512,
                exponent: 1.1,
                rate: 32,
            },
        )
        .with_churn(0.5, 20);
        let run = || {
            let r = run_scenario(
                &scenario,
                StreamConfig::new(64)
                    .policy(Policy::TwoChoice)
                    .batch_size(128)
                    .seed(9),
            );
            (r.stream.loads(), r.departed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn load_tree_sampling_matches_linear_scan_reference() {
        // Route (not push) so every resident is ticketed — the tree samples
        // over the ticket ledger, which for an all-routed stream equals the
        // loads the linear reference scans.
        let mut stream = StreamAllocator::new(StreamConfig::new(16).batch_size(16).seed(5));
        for k in 0..200u64 {
            stream.route(k).unwrap();
        }
        let loads = stream.loads();
        let total: u64 = loads.iter().map(|&l| l as u64).sum();
        for target in 0..total {
            let mut tree = LoadTree::build_from(&stream, 16);
            assert_eq!(tree.total(), total);
            let bin = tree.sample_and_remove(target);
            // Linear reference: first bin whose cumulative load exceeds target.
            let mut t = target;
            let expected = loads
                .iter()
                .position(|&l| {
                    if t < l as u64 {
                        true
                    } else {
                        t -= l as u64;
                        false
                    }
                })
                .unwrap();
            assert_eq!(bin, expected, "target {target}");
            assert_eq!(tree.total(), total - 1);
        }
    }

    #[test]
    fn capacity_proportional_churn_retires_from_heavy_bins() {
        use pba_model::router::{ReleaseEvent, RouterObserver};
        use pba_model::weights::BinWeights;
        use std::sync::{Arc, Mutex};

        /// Counts releases per bin via the observer hook — the per-bin
        /// departure census that distinguishes capacity-proportional churn
        /// from a load- or uniform-bin sampler.
        struct ReleaseCensus(Vec<u64>);
        impl RouterObserver for ReleaseCensus {
            fn on_release(&mut self, event: &ReleaseEvent) {
                self.0[event.ticket.bin()] += 1;
            }
        }

        // 4 bins of weight 8 and 28 of weight 1 (W = 60): each heavy bin
        // receives 8/60 of the departures vs 1/60 per light bin — an 8x
        // higher per-bin service rate. A weight-oblivious sampler (uniform
        // bins, or load-proportional once the weighted policy has balanced
        // load ∝ weight... which would also give ~8x; uniform gives 1x)
        // cannot reproduce the 8x per-bin ratio we assert.
        let n = 32usize;
        let weights = BinWeights::power_of_two_tiers(&[(4, 3), (28, 0)]);
        let scenario = ScenarioConfig::growth(
            400,
            ArrivalProcess::Uniform {
                keys: crate::arrival::UNIQUE_KEYS,
                rate: n,
            },
        )
        .with_churn(1.0, 50)
        .with_churn_mode(ChurnMode::CapacityProportional);
        let census = Arc::new(Mutex::new(ReleaseCensus(vec![0; n])));
        let mut stream = StreamAllocator::new(
            StreamConfig::new(n)
                .policy(Policy::WeightedTwoChoice)
                .batch_size(n)
                .seed(11)
                .weights(weights),
        );
        stream.add_observer(census.clone());
        let report = run_scenario_on(&scenario, stream);
        assert!(report.departed > 0);
        assert!(report.stream.conserves_balls());
        let resident = report.stream.resident();
        assert!(
            resident < report.arrived / 2,
            "churn failed to retire balls: {resident} of {}",
            report.arrived
        );
        // The per-bin departure census must show the 8x service-rate skew.
        let counts = &census.lock().unwrap().0;
        let heavy_per_bin: f64 = counts[..4].iter().sum::<u64>() as f64 / 4.0;
        let light_per_bin: f64 = counts[4..].iter().sum::<u64>() as f64 / 28.0;
        assert_eq!(counts.iter().sum::<u64>(), report.departed);
        assert!(
            heavy_per_bin > 5.0 * light_per_bin,
            "heavy bins should retire ~8x per bin: heavy {heavy_per_bin:.1}, \
             light {light_per_bin:.1}"
        );
        let stats = report.stream.shard_stats();
        let departed_total: u64 = stats.iter().map(|s| s.departed).sum();
        assert_eq!(departed_total, report.departed);
    }

    #[test]
    fn churn_modes_are_both_deterministic() {
        for mode in [ChurnMode::LoadProportional, ChurnMode::CapacityProportional] {
            let scenario = ScenarioConfig::growth(
                120,
                ArrivalProcess::Uniform {
                    keys: 512,
                    rate: 32,
                },
            )
            .with_churn(0.8, 20)
            .with_churn_mode(mode);
            let run = || {
                let r = run_scenario(&scenario, StreamConfig::new(64).batch_size(64).seed(3));
                (r.stream.loads(), r.departed)
            };
            assert_eq!(run(), run(), "mode {}", mode.name());
        }
    }

    #[test]
    fn two_choice_beats_one_choice_under_zipf() {
        let scenario = ScenarioConfig::growth(
            200,
            ArrivalProcess::Zipf {
                keys: 1 << 14,
                exponent: 0.9,
                rate: 256,
            },
        );
        let base = StreamConfig::new(256).batch_size(512).seed(4);
        let one = run_scenario(&scenario, base.clone().policy(Policy::OneChoice));
        let two = run_scenario(&scenario, base.policy(Policy::TwoChoice));
        assert!(
            two.final_gap < one.final_gap,
            "two-choice {} vs one-choice {}",
            two.final_gap,
            one.final_gap
        );
    }
}
