//! # pba-stream
//!
//! An **online, sharded, batched streaming allocation engine** — the dynamic
//! counterpart of the one-shot allocators in this workspace.
//!
//! The SPAA'19 paper allocates all `m` balls in a few synchronous rounds; a
//! production router instead sees balls *arrive over time* and must place each
//! one with whatever load information it has. Los & Sauerwald,
//! *Balanced Allocations in Batches: Simplified and Generalized* (2022), show
//! that the two-choice machinery survives this regime: if balls are allocated
//! in batches of size `b` and every ball of a batch only sees the loads from
//! the previous batch boundary (stale info), the gap stays `O(b/n + log n)` —
//! so batching/staleness costs a quantifiable, bounded amount of balance.
//! This crate implements exactly that model and makes the trade-offs
//! measurable (experiments E10–E12 in [`pba_workloads`-style tables]).
//!
//! * [`engine`] — [`StreamAllocator`]: the incremental `push` / `drain` /
//!   `snapshot` API. Balls buffer until a batch of `b` is ready; a drain
//!   allocates the batch against the **stale** snapshot and then advances the
//!   snapshot. Because every placement decision is a pure function of
//!   `(stale snapshot, ball key)`, the sharded parallel drain is bit-identical
//!   to the sequential one. The engine is the facade of a staged pipeline:
//!   the ingress stage (arrival buffering/sequencing), the [`snapshot`] stage
//!   (stale loads, thresholds, gap measure) and the commit stage
//!   (choose + apply) are separate modules shared with the concurrent core.
//! * [`concurrent`] — [`ConcurrentRouter`]: the **concurrent serving core** —
//!   a cloneable, `Arc`-backed shared handle whose `route(key)` is callable
//!   from many caller threads at once. Reads go to an epoch-published stale
//!   snapshot ([`pba_concurrent::EpochCell`]), commits are lock-free atomic
//!   increments, tickets flow through the bin-sharded
//!   [`pba_model::router::SharedTicketLedger`], and pushes ride sharded MPMC
//!   ingress lanes. With one caller it is bit-identical to
//!   [`StreamAllocator`]; with `k` callers, conservation, ticket consistency
//!   and epoch monotonicity hold for every interleaving.
//! * [`shard`] — [`ShardedBins`]: bins partitioned into contiguous shards;
//!   lock-free atomic load counters (from [`pba_concurrent`]) plus per-shard
//!   mutex-guarded bookkeeping, drained in parallel via rayon.
//! * [`policy`] — [`Policy`]: single-choice, two-choice, `d`-choice and the
//!   paper-style threshold rule, all over stale loads; candidate bins are a
//!   consistent hash of the ball's key. Heterogeneous backends are served by
//!   the weight-aware [`Policy::WeightedTwoChoice`] (sample ∝ weight, balance
//!   `load/weight`) and [`Policy::CapacityThreshold`] (per-bin capacity
//!   shares with one overflow retry); uniform weights are a **strict no-op**
//!   relative to the unweighted engine.
//! * [`observer`] — built-in [`RouterObserver`] sinks: the default
//!   [`GapTrajectoryObserver`] (the engine's own gap tracking, reimplemented
//!   as the first client of the observer hooks) and [`ReweightLog`].
//! * [`arrival`] — [`ArrivalProcess`]: uniform, Zipf-skewed and bursty
//!   arrival streams.
//! * [`scenario`] — [`run_scenario`]: ticks of arrivals + optional churn
//!   (ticket releases, load- or capacity-proportional) driving a
//!   [`StreamAllocator`], reporting online gap trajectories.
//! * [`autoscale`] — [`ScaleScenario`] / [`run_scale_scenario`]: the elastic
//!   counterpart — scripted scale events (ramp-up, flash crowd, rolling
//!   restart, scale-to-zero) staged against a live stream, with migration
//!   volume, availability and active-fraction measured per run (E19).
//!
//! Drain parallelism is explicit: [`StreamConfig::num_threads`] gives an
//! engine its own worker pool (`0` = the ambient/global pool, sized by
//! `PBA_THREADS` or the core count). Results are **bit-identical for every
//! worker count** — parallelism only partitions index ranges, it never
//! reorders RNG consumption.
//!
//! The engine also implements the unified [`Router`] interface of
//! [`pba_model::router`]: [`StreamAllocator::route`] places one ball
//! synchronously (bit-identical to `push` + `drain` for the same keys) and
//! returns a [`Ticket`]; [`StreamAllocator::release`] retires it with
//! validation. `StreamAllocator::set_weights` re-weights a **running** stream
//! at the next batch boundary.
//!
//! Both engines are **elastic**: a [`MembershipPlan`] staged through
//! `stage_membership` commissions, drains or retires bins at the next batch
//! boundary (see the `pba_membership` crate for the lifecycle). Draining
//! bins leave the sampling set but keep their residents until released or
//! force-migrated via `migrate_drained`; `StreamConfig::reserve_bins`
//! pre-allocates retired slots for scale-up without reallocation.
//!
//! ## Quick start
//!
//! ```
//! use pba_stream::{Policy, StreamAllocator, StreamConfig};
//!
//! let mut stream = StreamAllocator::new(
//!     StreamConfig::new(64).policy(Policy::TwoChoice).batch_size(64).seed(42),
//! );
//! for key in 0..10_000u64 {
//!     stream.push(key);
//! }
//! stream.flush();
//! assert!(stream.conserves_balls());
//! assert_eq!(stream.resident(), 10_000);
//! // The online gap trajectory has one entry per drained batch.
//! assert!(!stream.gap_trajectory().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod autoscale;
mod commit;
pub mod concurrent;
pub mod engine;
mod ingress;
pub mod metrics;
pub mod observer;
pub mod policy;
pub mod scenario;
pub mod server;
pub mod shard;
pub mod snapshot;

pub use arrival::{ArrivalProcess, ArrivalSampler, UNIQUE_KEYS};
pub use autoscale::{
    run_scale_scenario, run_scale_scenario_on, ScaleAction, ScaleEvent, ScaleReport, ScaleScenario,
};
pub use concurrent::{ConcurrentRouter, DelayedArrival};
pub use engine::{StreamAllocator, StreamConfig};
pub use metrics::{MembershipCounters, PolicyCounters, StreamMetrics};
pub use observer::{GapTrajectoryObserver, ReweightLog, ReweightRecord};
pub use policy::{candidate_bins, choose_bin, ChoiceCtx, Policy};
pub use scenario::{run_scenario, run_scenario_on, ChurnMode, ScenarioConfig, ScenarioReport};
pub use server::{LineClient, ServerConfig, SocketServer, MAX_ADD_TIER, MAX_LINE_LEN};
pub use shard::{ShardStats, ShardedBins};
pub use snapshot::StreamSnapshot;

// Re-exported so weighted stream configurations need only this crate.
pub use pba_model::router::{
    BatchEvent, MembershipChange, Placement, ReleaseEvent, ReweightEvent, RouteError, RouteEvent,
    Router, RouterObserver, RouterStats, Ticket,
};
pub use pba_model::weights::{BinWeights, ResolvedWeights};

// Re-exported so elastic stream configurations need only this crate: stage a
// `MembershipPlan` on either engine, inspect `BinState`s through the
// topology accessors.
pub use pba_membership::{ApplyOutcome, BinState, MembershipEvent, MembershipPlan};

// Re-exported so callers can build/install drain pools without naming the
// vendored shim: `StreamConfig::num_threads` covers the dedicated-pool case,
// `ThreadPool::install` the ambient one.
pub use rayon::{ThreadPool, ThreadPoolBuilder};
