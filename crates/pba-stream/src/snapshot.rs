//! The **snapshot** stage of the streaming pipeline: the stale load vector a
//! batch decides from, the thresholds priced against it, and the gap measure
//! recorded when the snapshot advances.
//!
//! Everything here is a pure function of `(policy, weights, resident loads,
//! batch length)` — no engine state — so the single-threaded
//! [`StreamAllocator`](crate::StreamAllocator) and the multi-threaded
//! [`ConcurrentRouter`](crate::ConcurrentRouter) share one implementation and
//! stay bit-identical wherever both are defined.

use pba_model::weights::{normalized_loads, weighted_gap, ResolvedWeights};
use pba_stats::quantiles_of;

use crate::policy::Policy;

/// A point-in-time view of the stream state.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Current (fresh) per-bin loads.
    pub loads: Vec<u32>,
    /// The stale snapshot the *next* batch will decide from.
    pub stale_loads: Vec<u32>,
    /// Balls pushed so far.
    pub arrived: u64,
    /// Balls placed into bins so far.
    pub placed: u64,
    /// Balls departed so far.
    pub departed: u64,
    /// Balls buffered but not yet drained.
    pub pending: u64,
    /// Batches drained so far.
    pub batches: u64,
    /// Current gap of the fresh loads: `max − mean` for uniform weights, the
    /// weighted gap `max_i(load_i/w_i) − (Σ load)/W` otherwise.
    pub gap: f64,
    /// Load quantiles `[p50, p90, p99, max]` of the fresh loads.
    pub load_quantiles: [f64; 4],
    /// Largest normalized load `max_i(load_i / w_i)` — equal to the raw max
    /// load for uniform weights.
    pub max_normalized_load: f64,
}

impl StreamSnapshot {
    /// Assembles a snapshot from the raw counters and a fresh load vector,
    /// computing the derived gap/quantile/normalized-load fields — the one
    /// place those derivations live, shared by both engines.
    #[allow(clippy::too_many_arguments)] // a constructor of raw counters
    pub(crate) fn assemble(
        loads: Vec<u32>,
        stale_loads: Vec<u32>,
        arrived: u64,
        placed: u64,
        departed: u64,
        pending: u64,
        batches: u64,
        weights: Option<&ResolvedWeights>,
    ) -> Self {
        let gap = gap_of_loads(&loads, weights);
        let as_f64: Vec<f64> = loads.iter().map(|&l| l as f64).collect();
        let qs = quantiles_of(&as_f64, &[0.5, 0.9, 0.99, 1.0]);
        let max_normalized_load = match weights {
            None => qs[3],
            Some(weights) => normalized_loads(&loads, weights)
                .into_iter()
                .fold(0.0f64, f64::max),
        };
        Self {
            loads,
            stale_loads,
            arrived,
            placed,
            departed,
            pending,
            batches,
            gap,
            load_quantiles: [qs[0], qs[1], qs[2], qs[3]],
            max_normalized_load,
        }
    }
}

/// `max − mean` of a load vector (`0` for an empty stream).
pub(crate) fn gap_of(loads: &[u32], total: u64) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    max - total as f64 / loads.len() as f64
}

/// The gap of a load vector under the stream's weights: classic `max − mean`
/// when uniform, weighted `max_i(load_i/w_i) − (Σ load)/W` otherwise.
pub(crate) fn gap_of_loads(loads: &[u32], weights: Option<&ResolvedWeights>) -> f64 {
    match weights {
        None => gap_of(loads, loads.iter().map(|&l| l as u64).sum()),
        Some(weights) => weighted_gap(loads, weights),
    }
}

/// The batch threshold of the paper-style [`Policy::Threshold`] rule:
/// `⌈(resident + batch)/n⌉ + slack`. Also the flat fallback threshold of
/// [`Policy::CapacityThreshold`] under uniform weights, where every bin's
/// capacity share collapses to the plain mean. `0` for non-threshold
/// policies (never consulted).
pub(crate) fn batch_threshold(policy: Policy, resident: u64, bins: usize, batch_len: u64) -> u32 {
    match policy {
        Policy::Threshold { slack, .. } | Policy::CapacityThreshold { slack, .. } => {
            let mean = (resident + batch_len).div_ceil(bins as u64);
            mean.min(u32::MAX as u64) as u32 + slack
        }
        _ => 0,
    }
}

/// Fills `out` with the per-bin thresholds
/// `⌈(resident + batch)·w_i/W⌉ + slack` of [`Policy::CapacityThreshold`];
/// leaves it empty (flat-threshold fallback) for every other configuration so
/// no per-batch `O(n)` work is added to them.
pub(crate) fn fill_capacity_thresholds_into(
    policy: Policy,
    weights: Option<&ResolvedWeights>,
    resident: u64,
    bins: usize,
    batch_len: u64,
    out: &mut Vec<u32>,
) {
    out.clear();
    if let (Policy::CapacityThreshold { slack, .. }, Some(weights)) = (policy, weights) {
        let post = (resident + batch_len) as f64;
        out.extend((0..bins).map(|i| {
            let fair = (post * weights.share(i)).ceil();
            (fair as u64).min(u32::MAX as u64) as u32 + slack
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_of_handles_empty_and_weighted_paths() {
        assert_eq!(gap_of(&[], 0), 0.0);
        assert_eq!(gap_of(&[4, 0], 4), 2.0);
        assert_eq!(gap_of_loads(&[4, 0], None), 2.0);
    }

    #[test]
    fn batch_threshold_only_prices_threshold_policies() {
        assert_eq!(batch_threshold(Policy::TwoChoice, 100, 4, 4), 0);
        // ⌈(100 + 4)/4⌉ + 2 = 28.
        assert_eq!(
            batch_threshold(Policy::Threshold { d: 2, slack: 2 }, 100, 4, 4),
            28
        );
        assert_eq!(
            batch_threshold(Policy::CapacityThreshold { d: 2, slack: 1 }, 0, 4, 8),
            3
        );
    }

    #[test]
    fn capacity_thresholds_follow_weight_shares() {
        use pba_model::weights::BinWeights;
        let weights = BinWeights::explicit(vec![2.0, 1.0, 1.0])
            .resolve(3)
            .unwrap();
        let mut out = Vec::new();
        fill_capacity_thresholds_into(
            Policy::CapacityThreshold { d: 2, slack: 1 },
            Some(&weights),
            0,
            3,
            8,
            &mut out,
        );
        // Shares 1/2, 1/4, 1/4 of 8 balls → ⌈4⌉+1, ⌈2⌉+1, ⌈2⌉+1.
        assert_eq!(out, vec![5, 3, 3]);
        // Every other configuration leaves the vector empty.
        fill_capacity_thresholds_into(Policy::TwoChoice, Some(&weights), 0, 3, 8, &mut out);
        assert!(out.is_empty());
        fill_capacity_thresholds_into(
            Policy::CapacityThreshold { d: 2, slack: 1 },
            None,
            0,
            3,
            8,
            &mut out,
        );
        assert!(out.is_empty(), "uniform weights use the flat threshold");
    }
}
