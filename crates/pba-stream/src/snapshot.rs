//! The **snapshot** stage of the streaming pipeline: the stale load vector a
//! batch decides from, the thresholds priced against it, and the gap measure
//! recorded when the snapshot advances.
//!
//! Everything here is a pure function of `(policy, weights, resident loads,
//! batch length)` — no engine state — so the single-threaded
//! [`StreamAllocator`](crate::StreamAllocator) and the multi-threaded
//! [`ConcurrentRouter`](crate::ConcurrentRouter) share one implementation and
//! stay bit-identical wherever both are defined.

use pba_model::weights::{normalized_loads, weighted_gap, ResolvedWeights};
use pba_stats::quantiles_of;

use crate::policy::Policy;

/// A point-in-time view of the stream state.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Current (fresh) per-bin loads.
    pub loads: Vec<u32>,
    /// The stale snapshot the *next* batch will decide from.
    pub stale_loads: Vec<u32>,
    /// Balls pushed so far.
    pub arrived: u64,
    /// Balls placed into bins so far.
    pub placed: u64,
    /// Balls departed so far.
    pub departed: u64,
    /// Balls buffered but not yet drained.
    pub pending: u64,
    /// Batches drained so far.
    pub batches: u64,
    /// Current gap of the fresh loads: `max − mean` for uniform weights, the
    /// weighted gap `max_i(load_i/w_i) − (Σ load)/W` otherwise.
    pub gap: f64,
    /// Load quantiles `[p50, p90, p99, max]` of the fresh loads.
    pub load_quantiles: [f64; 4],
    /// Largest normalized load `max_i(load_i / w_i)` — equal to the raw max
    /// load for uniform weights.
    pub max_normalized_load: f64,
}

impl StreamSnapshot {
    /// Assembles a snapshot from the raw counters and a fresh load vector,
    /// computing the derived gap/quantile/normalized-load fields — the one
    /// place those derivations live, shared by both engines.
    /// `weights` prices the derived stats for a fixed-membership engine;
    /// when `active` is present (elastic membership), the derived stats are
    /// computed over the **active** bins only — draining and retired slots
    /// hold balls that no placement decision can see — priced by
    /// `active_weights`, the resolve restricted to the surviving slots.
    #[allow(clippy::too_many_arguments)] // a constructor of raw counters
    pub(crate) fn assemble(
        loads: Vec<u32>,
        stale_loads: Vec<u32>,
        arrived: u64,
        placed: u64,
        departed: u64,
        pending: u64,
        batches: u64,
        weights: Option<&ResolvedWeights>,
        active: Option<&[u32]>,
        active_weights: Option<&ResolvedWeights>,
    ) -> Self {
        let (served, priced): (Vec<u32>, Option<&ResolvedWeights>) = match active {
            Some(active) => (
                active.iter().map(|&b| loads[b as usize]).collect(),
                active_weights,
            ),
            None => (loads.clone(), weights),
        };
        let gap = gap_of_loads(&served, priced);
        let as_f64: Vec<f64> = served.iter().map(|&l| l as f64).collect();
        let qs = quantiles_of(&as_f64, &[0.5, 0.9, 0.99, 1.0]);
        let max_normalized_load = match priced {
            None => qs[3],
            Some(priced) => normalized_loads(&served, priced)
                .into_iter()
                .fold(0.0f64, f64::max),
        };
        Self {
            loads,
            stale_loads,
            arrived,
            placed,
            departed,
            pending,
            batches,
            gap,
            load_quantiles: [qs[0], qs[1], qs[2], qs[3]],
            max_normalized_load,
        }
    }
}

/// `max − mean` of a load vector (`0` for an empty stream).
pub(crate) fn gap_of(loads: &[u32], total: u64) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    max - total as f64 / loads.len() as f64
}

/// The gap of a load vector under the stream's weights: classic `max − mean`
/// when uniform, weighted `max_i(load_i/w_i) − (Σ load)/W` otherwise.
pub(crate) fn gap_of_loads(loads: &[u32], weights: Option<&ResolvedWeights>) -> f64 {
    match weights {
        None => gap_of(loads, loads.iter().map(|&l| l as u64).sum()),
        Some(weights) => weighted_gap(loads, weights),
    }
}

/// The batch threshold of the paper-style [`Policy::Threshold`] rule:
/// `⌈(resident + batch)/n⌉ + slack`. Also the flat fallback threshold of
/// [`Policy::CapacityThreshold`] under uniform weights, where every bin's
/// capacity share collapses to the plain mean. `0` for non-threshold
/// policies (never consulted).
pub(crate) fn batch_threshold(policy: Policy, resident: u64, bins: usize, batch_len: u64) -> u32 {
    match policy {
        Policy::Threshold { slack, .. } | Policy::CapacityThreshold { slack, .. } => {
            let mean = (resident + batch_len).div_ceil(bins as u64);
            mean.min(u32::MAX as u64) as u32 + slack
        }
        _ => 0,
    }
}

/// Fills `out` with the per-bin thresholds
/// `⌈(resident + batch)·w_i/W⌉ + slack` of [`Policy::CapacityThreshold`];
/// leaves it empty (flat-threshold fallback) for every other configuration so
/// no per-batch `O(n)` work is added to them.
pub(crate) fn fill_capacity_thresholds_into(
    policy: Policy,
    weights: Option<&ResolvedWeights>,
    resident: u64,
    bins: usize,
    batch_len: u64,
    out: &mut Vec<u32>,
) {
    out.clear();
    if let (Policy::CapacityThreshold { slack, .. }, Some(weights)) = (policy, weights) {
        let post = (resident + batch_len) as f64;
        out.extend((0..bins).map(|i| {
            let fair = (post * weights.share(i)).ceil();
            (fair as u64).min(u32::MAX as u64) as u32 + slack
        }));
    }
}

/// The gap of the **active** bins of a membership-aware load vector:
/// gathers the active loads into `scratch` and prices them exactly like a
/// fixed engine over the surviving bins would (`weights` is the resolve
/// restricted to the active slots, `None` when they are uniform) — the
/// identity behind the post-drain suffix-equivalence property.
pub(crate) fn gap_of_active_loads(
    loads: &[u32],
    active: &[u32],
    weights: Option<&ResolvedWeights>,
    scratch: &mut Vec<u32>,
) -> f64 {
    scratch.clear();
    scratch.extend(active.iter().map(|&b| loads[b as usize]));
    gap_of_loads(scratch, weights)
}

/// Membership-aware sibling of [`fill_capacity_thresholds_into`]: per-bin
/// capacity thresholds `⌈(active_resident + batch)·w_i/W_active⌉ + slack`
/// scattered into a **capacity-length** vector (`out[b]` for active slot
/// `b`; entries of non-active slots are `0` and never consulted, since
/// policies only sample active candidates). `resident` must already be the
/// active-bin total, so the re-pricing happens over the surviving weight
/// mass only.
pub(crate) fn fill_active_capacity_thresholds_into(
    policy: Policy,
    active_weights: Option<&ResolvedWeights>,
    active: &[u32],
    resident: u64,
    capacity: usize,
    batch_len: u64,
    out: &mut Vec<u32>,
) {
    out.clear();
    if let (Policy::CapacityThreshold { slack, .. }, Some(weights)) = (policy, active_weights) {
        let post = (resident + batch_len) as f64;
        out.resize(capacity, 0);
        for (i, &bin) in active.iter().enumerate() {
            let fair = (post * weights.share(i)).ceil();
            out[bin as usize] = (fair as u64).min(u32::MAX as u64) as u32 + slack;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_of_handles_empty_and_weighted_paths() {
        assert_eq!(gap_of(&[], 0), 0.0);
        assert_eq!(gap_of(&[4, 0], 4), 2.0);
        assert_eq!(gap_of_loads(&[4, 0], None), 2.0);
    }

    #[test]
    fn batch_threshold_only_prices_threshold_policies() {
        assert_eq!(batch_threshold(Policy::TwoChoice, 100, 4, 4), 0);
        // ⌈(100 + 4)/4⌉ + 2 = 28.
        assert_eq!(
            batch_threshold(Policy::Threshold { d: 2, slack: 2 }, 100, 4, 4),
            28
        );
        assert_eq!(
            batch_threshold(Policy::CapacityThreshold { d: 2, slack: 1 }, 0, 4, 8),
            3
        );
    }

    #[test]
    fn capacity_thresholds_follow_weight_shares() {
        use pba_model::weights::BinWeights;
        let weights = BinWeights::explicit(vec![2.0, 1.0, 1.0])
            .resolve(3)
            .unwrap();
        let mut out = Vec::new();
        fill_capacity_thresholds_into(
            Policy::CapacityThreshold { d: 2, slack: 1 },
            Some(&weights),
            0,
            3,
            8,
            &mut out,
        );
        // Shares 1/2, 1/4, 1/4 of 8 balls → ⌈4⌉+1, ⌈2⌉+1, ⌈2⌉+1.
        assert_eq!(out, vec![5, 3, 3]);
        // Every other configuration leaves the vector empty.
        fill_capacity_thresholds_into(Policy::TwoChoice, Some(&weights), 0, 3, 8, &mut out);
        assert!(out.is_empty());
        fill_capacity_thresholds_into(
            Policy::CapacityThreshold { d: 2, slack: 1 },
            None,
            0,
            3,
            8,
            &mut out,
        );
        assert!(out.is_empty(), "uniform weights use the flat threshold");
    }

    #[test]
    fn active_gap_matches_a_compacted_load_vector() {
        let loads = vec![4u32, 99, 2, 99, 6];
        let active = vec![0u32, 2, 4];
        let mut scratch = Vec::new();
        let gap = gap_of_active_loads(&loads, &active, None, &mut scratch);
        assert_eq!(scratch, vec![4, 2, 6]);
        assert_eq!(gap, gap_of_loads(&[4, 2, 6], None));
    }

    #[test]
    fn active_capacity_thresholds_scatter_into_slot_space() {
        use pba_model::weights::BinWeights;
        // Capacity 5, active slots {0, 3, 4} with surviving weights 2:1:1.
        let active = vec![0u32, 3, 4];
        let weights = BinWeights::explicit(vec![2.0, 1.0, 1.0])
            .resolve(3)
            .unwrap();
        let mut out = Vec::new();
        fill_active_capacity_thresholds_into(
            Policy::CapacityThreshold { d: 2, slack: 1 },
            Some(&weights),
            &active,
            0,
            5,
            8,
            &mut out,
        );
        // Same shares as the compacted test: ⌈4⌉+1, ⌈2⌉+1, ⌈2⌉+1, scattered.
        assert_eq!(out, vec![5, 0, 0, 3, 3]);
        // Uniform survivors leave the vector empty (flat threshold path).
        fill_active_capacity_thresholds_into(
            Policy::CapacityThreshold { d: 2, slack: 1 },
            None,
            &active,
            0,
            5,
            8,
            &mut out,
        );
        assert!(out.is_empty());
    }
}
