//! Arrival processes for the streaming engine.
//!
//! A stream is a sequence of *ticks*; at each tick some number of balls
//! (requests) arrives, each carrying a **key**. Keys model request identity in
//! a router: the candidate bins of a ball are a pure hash of its key, so two
//! balls with the same key always contend for the same candidate set — which
//! is exactly why key skew (Zipfian traffic) stresses a load balancer in ways
//! uniform traffic does not.
//!
//! Three processes cover the scenario families of experiments E10–E12:
//!
//! * [`ArrivalProcess::Uniform`] — keys uniform over a key space, constant rate.
//! * [`ArrivalProcess::Zipf`] — keys Zipf(`exponent`)-distributed (rank 1 most
//!   popular), constant rate.
//! * [`ArrivalProcess::Bursty`] — uniform keys, but the rate alternates between
//!   a base level and `burst_mult ×` bursts.

use pba_model::rng::SplitMix64;

/// Sentinel key-space size meaning "effectively unique key per ball", i.e. the
/// classic balanced-allocations regime where every ball samples independent
/// candidate bins.
pub const UNIQUE_KEYS: u64 = u64::MAX;

/// How balls arrive over time: rate per tick plus key distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Uniform keys at a constant rate.
    Uniform {
        /// Key-space size (`UNIQUE_KEYS` for per-ball independent candidates).
        keys: u64,
        /// Balls per tick.
        rate: usize,
    },
    /// Zipf-distributed keys at a constant rate: key `k` (0-based rank) has
    /// probability proportional to `(k+1)^-exponent`.
    Zipf {
        /// Key-space size (must be finite).
        keys: u64,
        /// Skew exponent `s ≥ 0` (`0` degenerates to uniform).
        exponent: f64,
        /// Balls per tick.
        rate: usize,
    },
    /// Uniform keys with a periodically bursting rate: within every window of
    /// `burst_every` ticks, the first `burst_len` ticks carry
    /// `base_rate × burst_mult` arrivals and the rest carry `base_rate`.
    Bursty {
        /// Key-space size (`UNIQUE_KEYS` allowed).
        keys: u64,
        /// Off-burst balls per tick.
        base_rate: usize,
        /// Window length in ticks.
        burst_every: usize,
        /// Burst length in ticks (clamped to the window).
        burst_len: usize,
        /// Rate multiplier during a burst.
        burst_mult: usize,
    },
}

impl ArrivalProcess {
    /// Uniform keys over a key space sized so every ball is effectively unique
    /// — the classic "each ball samples fresh candidates" regime.
    pub fn uniform_independent(rate: usize) -> Self {
        Self::Uniform {
            keys: UNIQUE_KEYS,
            rate,
        }
    }

    /// Number of arrivals at `tick`.
    pub fn arrivals_at(&self, tick: u64) -> usize {
        match *self {
            Self::Uniform { rate, .. } | Self::Zipf { rate, .. } => rate,
            Self::Bursty {
                base_rate,
                burst_every,
                burst_len,
                burst_mult,
                ..
            } => {
                let window = burst_every.max(1) as u64;
                if tick % window < burst_len.min(burst_every) as u64 {
                    base_rate * burst_mult.max(1)
                } else {
                    base_rate
                }
            }
        }
    }
}

/// A sampler for one [`ArrivalProcess`]; precomputes the Zipf CDF once so
/// per-ball sampling is `O(log keys)` at worst.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    /// Cumulative (unnormalised) Zipf weights; empty for non-Zipf processes.
    zipf_cdf: Vec<f64>,
}

impl ArrivalSampler {
    /// Builds the sampler (precomputes the Zipf table when needed).
    pub fn new(process: ArrivalProcess) -> Self {
        let zipf_cdf = match process {
            ArrivalProcess::Zipf { keys, exponent, .. } => {
                assert!(
                    keys != UNIQUE_KEYS && keys > 0,
                    "Zipf arrivals need a finite, non-empty key space"
                );
                assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
                let mut cdf = Vec::with_capacity(keys as usize);
                let mut acc = 0.0f64;
                for k in 0..keys {
                    acc += ((k + 1) as f64).powf(-exponent);
                    cdf.push(acc);
                }
                cdf
            }
            _ => Vec::new(),
        };
        Self { process, zipf_cdf }
    }

    /// The underlying process.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// Number of arrivals at `tick` (delegates to the process).
    pub fn arrivals_at(&self, tick: u64) -> usize {
        self.process.arrivals_at(tick)
    }

    /// Draws one key.
    pub fn sample_key(&self, rng: &mut SplitMix64) -> u64 {
        match self.process {
            ArrivalProcess::Uniform { keys, .. } | ArrivalProcess::Bursty { keys, .. } => {
                if keys == UNIQUE_KEYS {
                    rng.next_u64()
                } else {
                    rng.gen_range(keys)
                }
            }
            ArrivalProcess::Zipf { .. } => {
                let total = *self.zipf_cdf.last().expect("non-empty zipf table");
                let u = rng.gen_f64() * total;
                // First rank whose cumulative weight exceeds u.
                self.zipf_cdf.partition_point(|&c| c <= u) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_key_space() {
        let sampler = ArrivalSampler::new(ArrivalProcess::Uniform { keys: 8, rate: 4 });
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[sampler.sample_key(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(sampler.arrivals_at(0), 4);
        assert_eq!(sampler.arrivals_at(999), 4);
    }

    #[test]
    fn unique_keys_rarely_collide() {
        let sampler = ArrivalSampler::new(ArrivalProcess::uniform_independent(1));
        let mut rng = SplitMix64::new(2);
        let mut keys: Vec<u64> = (0..10_000).map(|_| sampler.sample_key(&mut rng)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 10_000, "64-bit keys should not collide here");
    }

    #[test]
    fn zipf_is_skewed_and_ranked() {
        let sampler = ArrivalSampler::new(ArrivalProcess::Zipf {
            keys: 100,
            exponent: 1.2,
            rate: 1,
        });
        let mut rng = SplitMix64::new(3);
        let mut counts = [0u32; 100];
        let draws = 50_000;
        for _ in 0..draws {
            counts[sampler.sample_key(&mut rng) as usize] += 1;
        }
        // Rank 0 clearly dominates rank 9 which dominates rank 99.
        assert!(counts[0] > 2 * counts[9]);
        assert!(counts[9] > counts[99]);
        // Rank 0 frequency is near its theoretical share.
        let share = counts[0] as f64 / draws as f64;
        let expect = 1.0 / (1..=100u32).map(|k| (k as f64).powf(-1.2)).sum::<f64>();
        assert!((share - expect).abs() < 0.02, "share {share} vs {expect}");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let sampler = ArrivalSampler::new(ArrivalProcess::Zipf {
            keys: 10,
            exponent: 0.0,
            rate: 1,
        });
        let mut rng = SplitMix64::new(4);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[sampler.sample_key(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let dev = (c as f64 - 2000.0).abs() / 2000.0;
            assert!(dev < 0.1, "bucket deviates by {dev}");
        }
    }

    #[test]
    fn bursty_rate_schedule() {
        let p = ArrivalProcess::Bursty {
            keys: UNIQUE_KEYS,
            base_rate: 10,
            burst_every: 5,
            burst_len: 2,
            burst_mult: 4,
        };
        let rates: Vec<usize> = (0..10).map(|t| p.arrivals_at(t)).collect();
        assert_eq!(rates, vec![40, 40, 10, 10, 10, 40, 40, 10, 10, 10]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let sampler = ArrivalSampler::new(ArrivalProcess::Zipf {
            keys: 50,
            exponent: 0.9,
            rate: 1,
        });
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(9);
            (0..100).map(|_| sampler.sample_key(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SplitMix64::new(9);
            (0..100).map(|_| sampler.sample_key(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
