//! The shard layer: bins partitioned into contiguous shards.
//!
//! Load counters live in one flat [`AtomicBins`] array (the same lock-free
//! bounded-increment substrate the concurrent executor uses), so placements
//! from any thread are linearisable without locks. Each shard additionally
//! owns a small mutex-guarded bookkeeping record ([`ShardStats`]) — accepted /
//! departed totals and the peak load ever observed in the shard — which the
//! parallel drain updates once per (shard, batch), keeping lock traffic
//! negligible.

use std::sync::Mutex;

use pba_concurrent::AtomicBins;

/// Per-shard bookkeeping, updated under the shard's lock.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Balls placed into this shard over the stream's lifetime.
    pub accepted: u64,
    /// Balls departed from this shard.
    pub departed: u64,
    /// Highest load ever observed on a bin of this shard.
    pub peak_load: u32,
}

/// `n` bins split into `shards` contiguous ranges.
#[derive(Debug)]
pub struct ShardedBins {
    bins: AtomicBins,
    shards: usize,
    stats: Vec<Mutex<ShardStats>>,
}

impl ShardedBins {
    /// Creates `n` empty bins in `shards` shards (clamped to `[1, n]`).
    pub fn new(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        Self {
            bins: AtomicBins::new(n),
            shards,
            stats: (0..shards)
                .map(|_| Mutex::new(ShardStats::default()))
                .collect(),
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when there are no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `bin`: `⌊bin·S/n⌋`, the inverse of [`Self::shard_start`].
    pub fn shard_of(&self, bin: usize) -> usize {
        debug_assert!(bin < self.len());
        bin * self.shards / self.len()
    }

    /// First bin of shard `s`: `⌈s·n/S⌉` (so shard `s` owns
    /// `[start(s), start(s+1))`, consistent with [`Self::shard_of`]).
    pub fn shard_start(&self, s: usize) -> usize {
        (s * self.len()).div_ceil(self.shards)
    }

    /// Places one ball into `bin` and updates the owning shard's stats.
    /// Used by the sequential drain path; the parallel path batches the stats
    /// update via [`ShardedBins::record_batch`].
    pub fn place(&self, bin: usize) {
        let new_load = self.bins.add(bin);
        let mut stats = self.stats[self.shard_of(bin)].lock().expect("shard lock");
        stats.accepted += 1;
        stats.peak_load = stats.peak_load.max(new_load);
    }

    /// Places one ball into `bin` without touching shard stats; returns the
    /// new load. The caller is expected to fold stats via `record_batch`.
    pub fn place_unrecorded(&self, bin: usize) -> u32 {
        self.bins.add(bin)
    }

    /// Places `count` balls into `bin` with **one** atomic increment (no
    /// shard stats; fold via [`ShardedBins::record_batch`]); returns the new
    /// load. Used when whole per-bin populations are committed at once, e.g.
    /// seeding resident loads.
    pub fn place_many_unrecorded(&self, bin: usize, count: u32) -> u32 {
        self.bins.add_many(bin, count)
    }

    /// Places a group of balls — one entry of `bins` per ball — committing
    /// **one** atomic increment per distinct bin and taking each touched
    /// shard's stats lock once. Equivalent to calling [`ShardedBins::place`]
    /// once per entry: loads only grow, so the sequential loop's running
    /// peak equals the final load of each touched bin, which is exactly
    /// what the grouped commit records.
    pub fn place_group(&self, bins: &[u32]) {
        if bins.is_empty() {
            return;
        }
        let mut sorted = bins.to_vec();
        sorted.sort_unstable();
        let mut shard = usize::MAX;
        let mut accepted = 0u64;
        let mut peak = 0u32;
        let mut i = 0;
        while i < sorted.len() {
            let bin = sorted[i] as usize;
            let mut run = 1usize;
            while i + run < sorted.len() && sorted[i + run] as usize == bin {
                run += 1;
            }
            let owner = self.shard_of(bin);
            if owner != shard {
                if shard != usize::MAX {
                    self.record_batch(shard, accepted, peak);
                }
                shard = owner;
                accepted = 0;
                peak = 0;
            }
            let new_load = self.bins.add_many(bin, run as u32);
            accepted += run as u64;
            peak = peak.max(new_load);
            i += run;
        }
        self.record_batch(shard, accepted, peak);
    }

    /// Folds one batch's worth of per-shard bookkeeping under the shard lock.
    pub fn record_batch(&self, shard: usize, accepted: u64, peak_load: u32) {
        let mut stats = self.stats[shard].lock().expect("shard lock");
        stats.accepted += accepted;
        stats.peak_load = stats.peak_load.max(peak_load);
    }

    /// Removes one ball from `bin` (if non-empty) and updates shard stats.
    pub fn depart(&self, bin: usize) -> bool {
        let ok = self.bins.try_release(bin);
        if ok {
            let mut stats = self.stats[self.shard_of(bin)].lock().expect("shard lock");
            stats.departed += 1;
        }
        ok
    }

    /// Removes a group of balls — one entry of `bins` per ball — committing
    /// **one** grouped atomic decrement per distinct bin
    /// ([`AtomicBins::try_release_many`]) and taking each touched shard's
    /// stats lock once. The departure-side twin of
    /// [`ShardedBins::place_group`], equivalent to calling
    /// [`ShardedBins::depart`] once per entry: each bin's decrement clamps
    /// at zero exactly where the loop's `try_release` calls would start
    /// failing. Returns how many balls actually departed (`bins.len()`
    /// unless some bin underflowed — a caller bug, never silent).
    pub fn release_group(&self, bins: &[u32]) -> u64 {
        if bins.is_empty() {
            return 0;
        }
        let mut sorted = bins.to_vec();
        sorted.sort_unstable();
        let mut shard = usize::MAX;
        let mut departed = 0u64;
        let mut total = 0u64;
        let mut i = 0;
        while i < sorted.len() {
            let bin = sorted[i] as usize;
            let mut run = 1usize;
            while i + run < sorted.len() && sorted[i + run] as usize == bin {
                run += 1;
            }
            let owner = self.shard_of(bin);
            if owner != shard {
                if shard != usize::MAX && departed > 0 {
                    let mut stats = self.stats[shard].lock().expect("shard lock");
                    stats.departed += departed;
                }
                shard = owner;
                departed = 0;
            }
            let released = self.bins.try_release_many(bin, run as u32) as u64;
            departed += released;
            total += released;
            i += run;
        }
        if departed > 0 {
            let mut stats = self.stats[shard].lock().expect("shard lock");
            stats.departed += departed;
        }
        total
    }

    /// Current load of `bin`.
    pub fn load(&self, bin: usize) -> u32 {
        self.bins.load(bin)
    }

    /// Snapshot of all loads.
    pub fn snapshot(&self) -> Vec<u32> {
        self.bins.snapshot()
    }

    /// Sum of all loads (balls currently resident).
    pub fn total(&self) -> u64 {
        self.bins.total()
    }

    /// Copy of shard `s`'s bookkeeping.
    pub fn shard_stats(&self, s: usize) -> ShardStats {
        *self.stats[s].lock().expect("shard lock")
    }

    /// Bookkeeping of every shard.
    pub fn all_shard_stats(&self) -> Vec<ShardStats> {
        (0..self.shards).map(|s| self.shard_stats(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_partition_is_contiguous_and_complete() {
        for (n, shards) in [(8, 3), (64, 4), (7, 7), (10, 1), (5, 9)] {
            let sb = ShardedBins::new(n, shards);
            let s = sb.shard_count();
            assert!(s >= 1 && s <= n);
            // Every bin maps to exactly one shard consistent with the ranges.
            for bin in 0..n {
                let shard = sb.shard_of(bin);
                assert!(sb.shard_start(shard) <= bin);
                assert!(bin < sb.shard_start(shard + 1));
            }
            // No shard is empty.
            for shard in 0..s {
                assert!(sb.shard_start(shard) < sb.shard_start(shard + 1));
            }
            // Shard starts are non-decreasing and cover [0, n).
            assert_eq!(sb.shard_start(0), 0);
            assert_eq!(sb.shard_start(s), n);
        }
    }

    #[test]
    fn place_and_depart_update_stats() {
        let sb = ShardedBins::new(4, 2);
        sb.place(0);
        sb.place(0);
        sb.place(3);
        assert_eq!(sb.total(), 3);
        assert_eq!(sb.shard_stats(0).accepted, 2);
        assert_eq!(sb.shard_stats(0).peak_load, 2);
        assert_eq!(sb.shard_stats(1).accepted, 1);
        assert!(sb.depart(0));
        assert_eq!(sb.shard_stats(0).departed, 1);
        assert_eq!(sb.total(), 2);
        assert!(!sb.depart(1), "empty bin");
        // Peak load is sticky even after departures.
        assert_eq!(sb.shard_stats(0).peak_load, 2);
    }

    #[test]
    fn batched_unrecorded_place_equals_repeated_singles() {
        let a = ShardedBins::new(4, 2);
        let b = ShardedBins::new(4, 2);
        assert_eq!(a.place_many_unrecorded(1, 5), 5);
        for _ in 0..5 {
            b.place_unrecorded(1);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.place_many_unrecorded(1, 2), 7);
    }

    #[test]
    fn unrecorded_place_plus_record_batch_equals_place() {
        let a = ShardedBins::new(8, 2);
        let b = ShardedBins::new(8, 2);
        for bin in [0usize, 1, 1, 5, 7, 7, 7] {
            a.place(bin);
        }
        let mut peaks = [0u32; 2];
        let mut counts = [0u64; 2];
        for bin in [0usize, 1, 1, 5, 7, 7, 7] {
            let load = b.place_unrecorded(bin);
            let s = b.shard_of(bin);
            peaks[s] = peaks[s].max(load);
            counts[s] += 1;
        }
        for s in 0..2 {
            b.record_batch(s, counts[s], peaks[s]);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.all_shard_stats(), b.all_shard_stats());
    }

    #[test]
    fn place_group_equals_a_loop_of_places() {
        let grouped = ShardedBins::new(8, 3);
        let looped = ShardedBins::new(8, 3);
        // Seed uneven resident loads so peaks differ per shard.
        for sb in [&grouped, &looped] {
            for bin in [0usize, 0, 6, 6, 6, 3] {
                sb.place(bin);
            }
        }
        let group: Vec<u32> = vec![7, 0, 2, 2, 6, 0, 7, 3, 6, 6];
        grouped.place_group(&group);
        for &bin in &group {
            looped.place(bin as usize);
        }
        assert_eq!(grouped.snapshot(), looped.snapshot());
        assert_eq!(grouped.all_shard_stats(), looped.all_shard_stats());
        // An empty group is a no-op.
        grouped.place_group(&[]);
        assert_eq!(grouped.all_shard_stats(), looped.all_shard_stats());
    }

    #[test]
    fn release_group_equals_a_loop_of_departs() {
        let grouped = ShardedBins::new(8, 3);
        let looped = ShardedBins::new(8, 3);
        for sb in [&grouped, &looped] {
            for bin in [0usize, 0, 2, 3, 6, 6, 6, 7, 7] {
                sb.place(bin);
            }
        }
        let group: Vec<u32> = vec![7, 0, 2, 6, 0, 7, 6, 6];
        assert_eq!(grouped.release_group(&group), group.len() as u64);
        for &bin in &group {
            assert!(looped.depart(bin as usize));
        }
        assert_eq!(grouped.snapshot(), looped.snapshot());
        assert_eq!(grouped.all_shard_stats(), looped.all_shard_stats());
        // An empty group is a no-op; an underflowing group reports the truth
        // (bin 2 is empty now, so only the bin-3 ball departs).
        assert_eq!(grouped.release_group(&[]), 0);
        assert_eq!(grouped.release_group(&[2, 3, 2]), 1);
        assert_eq!(grouped.load(3), 0);
    }

    #[test]
    fn concurrent_places_conserve() {
        use std::sync::Arc;
        let sb = Arc::new(ShardedBins::new(32, 4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let sb = Arc::clone(&sb);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    sb.place(((i * 7 + t * 13) % 32) as usize);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sb.total(), 4000);
        let accepted: u64 = sb.all_shard_stats().iter().map(|s| s.accepted).sum();
        assert_eq!(accepted, 4000);
    }
}
