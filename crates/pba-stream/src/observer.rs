//! Built-in [`RouterObserver`] implementations for the streaming engine.
//!
//! Observers are the pluggable metrics surface of the router API: the engine
//! fires [`RouterObserver::on_batch`] at every batch boundary,
//! [`RouterObserver::on_reweight`] when a runtime weight change takes effect,
//! and [`RouterObserver::on_release`] per departure. The engine's own gap
//! tracking is itself an observer — [`GapTrajectoryObserver`] — installed by
//! default, so "the gap trajectory" is no longer ad-hoc engine state but the
//! first client of the same hook external sinks use.

use pba_model::router::{BatchEvent, ReweightEvent, RouterObserver};
use pba_stats::OnlineStats;

/// The default observer: records the per-batch (weighted) gap into a bounded
/// trajectory plus a full-history [`OnlineStats`] accumulator.
///
/// The trajectory keeps only the most recent `cap` entries (amortised O(1):
/// compacted when it reaches twice the cap) so a long-running stream does not
/// grow with uptime; the streaming statistics cover every batch regardless.
#[derive(Debug, Clone)]
pub struct GapTrajectoryObserver {
    cap: usize,
    trajectory: Vec<f64>,
    stats: OnlineStats,
}

impl GapTrajectoryObserver {
    /// An empty trajectory retaining at least the `cap` most recent entries.
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            trajectory: Vec::new(),
            stats: OnlineStats::new(),
        }
    }

    /// The recorded gaps, oldest retained entry first.
    pub fn trajectory(&self) -> &[f64] {
        &self.trajectory
    }

    /// Full-history streaming statistics over every recorded gap.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }
}

impl RouterObserver for GapTrajectoryObserver {
    fn on_batch(&mut self, event: &BatchEvent<'_>) {
        if self.trajectory.len() >= self.cap.saturating_mul(2) {
            self.trajectory.drain(..self.trajectory.len() - self.cap);
        }
        self.trajectory.push(event.gap);
        self.stats.push(event.gap);
    }
}

/// One recorded reweighting, as seen by [`ReweightLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReweightRecord {
    /// Batches completed before the new weights took effect.
    pub batch_index: u64,
    /// Balls resident at the boundary.
    pub resident: u64,
    /// Whether the engine is uniform (`true`) or weighted after the change.
    pub uniform: bool,
}

/// An observer that logs every runtime reweighting boundary — used by the
/// reweighting experiment (E14) and the `router_lifecycle` example to verify
/// *when* a `set_weights` call actually took effect.
#[derive(Debug, Clone, Default)]
pub struct ReweightLog {
    records: Vec<ReweightRecord>,
}

impl ReweightLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every reweighting observed so far, in order.
    pub fn records(&self) -> &[ReweightRecord] {
        &self.records
    }
}

impl RouterObserver for ReweightLog {
    fn on_reweight(&mut self, event: &ReweightEvent<'_>) {
        self.records.push(ReweightRecord {
            batch_index: event.batch_index,
            resident: event.resident,
            uniform: event.weights.is_none(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_event(loads: &[u32], gap: f64, index: u64) -> BatchEvent<'_> {
        BatchEvent {
            batch_index: index,
            batch_len: loads.len(),
            loads,
            gap,
            resident: loads.iter().map(|&l| l as u64).sum(),
        }
    }

    #[test]
    fn gap_observer_records_and_caps() {
        let mut obs = GapTrajectoryObserver::new(4);
        let loads = [1u32, 2];
        for i in 0..20 {
            obs.on_batch(&batch_event(&loads, i as f64, i + 1));
        }
        assert!(obs.trajectory().len() <= 8, "{}", obs.trajectory().len());
        assert!(obs.trajectory().len() >= 4);
        assert_eq!(obs.stats().count(), 20);
        assert_eq!(*obs.trajectory().last().unwrap(), 19.0);
    }

    #[test]
    fn reweight_log_records_boundaries() {
        let mut log = ReweightLog::new();
        let loads = [3u32, 3];
        log.on_reweight(&ReweightEvent {
            batch_index: 7,
            loads: &loads,
            weights: None,
            resident: 6,
        });
        assert_eq!(
            log.records(),
            &[ReweightRecord {
                batch_index: 7,
                resident: 6,
                uniform: true,
            }]
        );
        // Batch events are ignored by the log.
        log.on_batch(&batch_event(&loads, 0.0, 8));
        assert_eq!(log.records().len(), 1);
    }
}
