//! Zero-allocation line-protocol codec.
//!
//! The wire format is exactly the one `pba_stream::server` speaks (see its
//! module docs for the verb table); what changes here is the *machinery*:
//! requests are parsed straight from the byte slice of a complete line
//! sitting in a reusable per-connection read buffer, and replies are
//! rendered with a small itoa-style integer writer into a reusable reply
//! buffer. In steady state neither direction allocates: no `String`, no
//! `format!`, no per-request `Vec` — the counting-allocator test
//! (`tests/zero_alloc_codec.rs`) pins that down.
//!
//! Divergence from the `&str` path is confined to inputs the old path could
//! not even represent: a line that is not valid UTF-8 parses as
//! [`Request::Bad`] (`ERR bad-request`) where `BufRead::read_line` would
//! have errored and hung up the connection. On every `&str`-representable
//! line — valid or malformed — the two parsers agree, property-tested in
//! `tests/serving_properties.rs`.

use pba_stream::MAX_ADD_TIER;
pub use pba_stream::MAX_LINE_LEN;

/// One parsed request line. Malformed lines — unknown verbs, garbage
/// numbers, trailing tokens, out-of-range tiers — uniformly parse as
/// [`Request::Bad`]: the reply is `ERR bad-request`, counted, never a
/// hangup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// `ROUTE <key>` — route one ball.
    Route {
        /// The routing key.
        key: u64,
    },
    /// `RELEASE <id>` — redeem the parked ticket of arrival `id`.
    Release {
        /// The arrival id the server parked the ticket under.
        id: u64,
    },
    /// `FLUSH` — close the open batch.
    Flush,
    /// `STATS` — aggregate counters.
    Stats,
    /// `ADD <weight> [tier]` — stage commissioning one bin; `weight` is the
    /// already-staged `weight·2^tier` (tier validated against
    /// [`MAX_ADD_TIER`] during parsing).
    Add {
        /// The staged weight (`weight·2^tier`).
        weight: f64,
    },
    /// `DRAIN <bin>` — stage draining a bin.
    Drain {
        /// The bin to drain.
        bin: u32,
    },
    /// `REMOVE <bin>` — stage retiring a drained, empty bin.
    Remove {
        /// The bin to retire.
        bin: u32,
    },
    /// `MIGRATE` — force-migrate residents off draining bins.
    Migrate,
    /// Anything else.
    Bad,
}

/// Parses one complete request line (newline already stripped) from raw
/// bytes. Mirrors the blocking server's `&str` parsing token for token —
/// same whitespace splitting, same strict field validation — without
/// allocating.
pub fn parse_request(line: &[u8]) -> Request {
    // The protocol is ASCII; `from_utf8` is a validation pass, not a copy.
    // Invalid UTF-8 cannot be a well-formed request, so it is a bad request
    // (the old `read_line` path could only hang up on such input).
    let Ok(line) = std::str::from_utf8(line) else {
        return Request::Bad;
    };
    let mut parts = line.split_ascii_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("ROUTE"), Some(key), None) => match key.parse() {
            Ok(key) => Request::Route { key },
            Err(_) => Request::Bad,
        },
        (Some("RELEASE"), Some(id), None) => match id.parse() {
            Ok(id) => Request::Release { id },
            Err(_) => Request::Bad,
        },
        (Some("ADD"), Some(weight), tier) => {
            // `ADD <weight> [tier]`: every field validates strictly — a
            // garbage weight, a non-integer tier, a tier above
            // `MAX_ADD_TIER`, or trailing tokens are a bad request.
            let tier = match tier {
                None => Some(0u32),
                Some(t) => t.parse::<u32>().ok().filter(|&t| t <= MAX_ADD_TIER),
            };
            match (weight.parse::<f64>(), tier, parts.next()) {
                (Ok(weight), Some(tier), None) if weight.is_finite() && weight > 0.0 => {
                    Request::Add {
                        weight: weight * (1u64 << tier) as f64,
                    }
                }
                _ => Request::Bad,
            }
        }
        (Some("DRAIN"), Some(bin), None) => match bin.parse() {
            Ok(bin) => Request::Drain { bin },
            Err(_) => Request::Bad,
        },
        (Some("REMOVE"), Some(bin), None) => match bin.parse() {
            Ok(bin) => Request::Remove { bin },
            Err(_) => Request::Bad,
        },
        (Some("MIGRATE"), None, None) => Request::Migrate,
        (Some("FLUSH"), None, None) => Request::Flush,
        (Some("STATS"), None, None) => Request::Stats,
        _ => Request::Bad,
    }
}

/// Appends the decimal digits of `value` — an itoa-style writer: a stack
/// scratch of at most 20 digits, one `extend_from_slice`, no heap traffic
/// beyond the buffer the caller reuses.
pub fn push_u64(buf: &mut Vec<u8>, value: u64) {
    let mut digits = [0u8; 20];
    let mut at = digits.len();
    let mut rest = value;
    loop {
        at -= 1;
        digits[at] = b'0' + (rest % 10) as u8;
        rest /= 10;
        if rest == 0 {
            break;
        }
    }
    buf.extend_from_slice(&digits[at..]);
}

/// `OK <bin> <id>\n` — the `ROUTE` reply.
pub fn write_ok_route(buf: &mut Vec<u8>, bin: usize, id: u64) {
    buf.extend_from_slice(b"OK ");
    push_u64(buf, bin as u64);
    buf.push(b' ');
    push_u64(buf, id);
    buf.push(b'\n');
}

/// `OK <bin>\n` — the `RELEASE` reply.
pub fn write_ok_bin(buf: &mut Vec<u8>, bin: usize) {
    buf.extend_from_slice(b"OK ");
    push_u64(buf, bin as u64);
    buf.push(b'\n');
}

/// `OK <count>\n` — the `FLUSH` / `MIGRATE` reply.
pub fn write_ok_count(buf: &mut Vec<u8>, count: u64) {
    buf.extend_from_slice(b"OK ");
    push_u64(buf, count);
    buf.push(b'\n');
}

/// `OK staged\n` — the membership-staging acknowledgement.
pub fn write_ok_staged(buf: &mut Vec<u8>) {
    buf.extend_from_slice(b"OK staged\n");
}

/// `OK routed <r> released <d> resident <n> batches <b>\n` — the `STATS`
/// reply.
pub fn write_stats(buf: &mut Vec<u8>, routed: u64, released: u64, resident: u64, batches: u64) {
    buf.extend_from_slice(b"OK routed ");
    push_u64(buf, routed);
    buf.extend_from_slice(b" released ");
    push_u64(buf, released);
    buf.extend_from_slice(b" resident ");
    push_u64(buf, resident);
    buf.extend_from_slice(b" batches ");
    push_u64(buf, batches);
    buf.push(b'\n');
}

/// `ERR bad-request\n`.
pub fn write_err_bad_request(buf: &mut Vec<u8>) {
    buf.extend_from_slice(b"ERR bad-request\n");
}

/// `ERR unknown-ticket\n`.
pub fn write_err_unknown_ticket(buf: &mut Vec<u8>) {
    buf.extend_from_slice(b"ERR unknown-ticket\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_matches_the_verb_table() {
        assert_eq!(parse_request(b"ROUTE 42"), Request::Route { key: 42 });
        assert_eq!(parse_request(b"RELEASE 7"), Request::Release { id: 7 });
        assert_eq!(parse_request(b"FLUSH"), Request::Flush);
        assert_eq!(parse_request(b"STATS"), Request::Stats);
        assert_eq!(parse_request(b"ADD 1.5"), Request::Add { weight: 1.5 });
        assert_eq!(parse_request(b"ADD 1.5 3"), Request::Add { weight: 12.0 });
        assert_eq!(parse_request(b"DRAIN 3"), Request::Drain { bin: 3 });
        assert_eq!(parse_request(b"REMOVE 3"), Request::Remove { bin: 3 });
        assert_eq!(parse_request(b"MIGRATE"), Request::Migrate);
        // Leading/trailing whitespace splits exactly like the `&str` path.
        assert_eq!(parse_request(b"  ROUTE  42  "), Request::Route { key: 42 });
    }

    #[test]
    fn malformed_lines_parse_as_bad() {
        for line in [
            &b""[..],
            b"   ",
            b"NONSENSE line",
            b"ROUTE",
            b"ROUTE x",
            b"ROUTE 1 2",
            b"ROUTE 99999999999999999999999",
            b"RELEASE nope",
            b"ADD -1",
            b"ADD nope 2",
            b"ADD 1.0 x",
            b"ADD 1.0 33",
            b"ADD 1.0 2 extra",
            b"ADD inf",
            b"DRAIN x",
            b"FLUSH now",
            b"STATS 1",
            b"MIGRATE 1",
            b"route 1",
            b"\xff\xfe",
        ] {
            assert_eq!(parse_request(line), Request::Bad, "{:?}", line);
        }
    }

    #[test]
    fn integer_writer_matches_format() {
        let mut buf = Vec::new();
        for value in [0u64, 1, 9, 10, 99, 12_345, u64::MAX] {
            buf.clear();
            push_u64(&mut buf, value);
            assert_eq!(buf, format!("{value}").into_bytes());
        }
        buf.clear();
        write_ok_route(&mut buf, 31, 907);
        assert_eq!(buf, b"OK 31 907\n");
        buf.clear();
        write_stats(&mut buf, 4, 3, 1, 2);
        assert_eq!(&buf, b"OK routed 4 released 3 resident 1 batches 2\n");
    }
}
