//! Readiness polling behind one small trait.
//!
//! [`Poller`] is the only thing the reactor knows about: register a
//! nonblocking socket under an integer token, ask which tokens are ready to
//! read. Two implementations exist:
//!
//! * [`EpollPoller`] (Linux only) — raw level-triggered `epoll` through
//!   `extern "C"` bindings. No crate dependency: `std` already links libc,
//!   so the three syscall wrappers resolve at link time. This is the
//!   production path: an idle reactor parks in `epoll_wait` and wakes the
//!   moment any of its connections has bytes.
//! * [`FallbackPoller`] (everywhere) — a portable nonblocking poll loop: it
//!   sleeps a short tick and then reports *every* registered token as ready.
//!   Readiness is allowed to be spurious — connections are nonblocking, so
//!   a read on a quiet socket just returns `WouldBlock` — which makes this
//!   trivially correct, merely less efficient. Tests and non-Linux builds
//!   run on it; [`new_poller`] picks the best available at runtime.
//!
//! Only read-interest is registered. The reactor retries pending writes on
//! every poll tick instead of plumbing write-interest through the trait —
//! replies are tiny, so a full socket send buffer is a transient condition a
//! tick-later retry absorbs.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Readiness-polling interface the reactor drives (see the
/// [module docs](self)).
pub trait Poller: Send {
    /// Starts watching `stream` for read-readiness under `token`.
    fn register(&mut self, stream: &TcpStream, token: usize) -> io::Result<()>;

    /// Stops watching `stream` / `token`.
    fn deregister(&mut self, stream: &TcpStream, token: usize) -> io::Result<()>;

    /// Clears `ready` and fills it with the tokens that are (possibly
    /// spuriously) ready to read, waiting at most `timeout`.
    fn poll(&mut self, ready: &mut Vec<usize>, timeout: Duration) -> io::Result<()>;
}

/// Builds the best poller available: [`EpollPoller`] on Linux (unless
/// `force_fallback` asks for the portable path, which tests use to exercise
/// both implementations on one machine), [`FallbackPoller`] otherwise.
pub fn new_poller(force_fallback: bool) -> io::Result<Box<dyn Poller>> {
    #[cfg(target_os = "linux")]
    {
        if !force_fallback {
            return Ok(Box::new(EpollPoller::new()?));
        }
    }
    let _ = force_fallback;
    Ok(Box::new(FallbackPoller::new()))
}

/// The portable poll loop: every registered token is reported ready after a
/// short sleep. Spurious readiness is harmless against nonblocking sockets;
/// the sleep bounds the busy-loop cost.
#[derive(Debug, Default)]
pub struct FallbackPoller {
    tokens: Vec<usize>,
}

/// The fallback's busy-loop damper: with connections registered it sleeps
/// this long (capped by the caller's timeout) before declaring everything
/// ready, trading up to 500µs of added latency for a bounded spin rate.
const FALLBACK_TICK: Duration = Duration::from_micros(500);

impl FallbackPoller {
    /// Creates an empty poller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Poller for FallbackPoller {
    fn register(&mut self, _stream: &TcpStream, token: usize) -> io::Result<()> {
        if !self.tokens.contains(&token) {
            self.tokens.push(token);
        }
        Ok(())
    }

    fn deregister(&mut self, _stream: &TcpStream, token: usize) -> io::Result<()> {
        self.tokens.retain(|&t| t != token);
        Ok(())
    }

    fn poll(&mut self, ready: &mut Vec<usize>, timeout: Duration) -> io::Result<()> {
        ready.clear();
        if self.tokens.is_empty() {
            // Nothing to be ready: honour the full timeout like a real
            // poller would, so an idle reactor doesn't spin.
            std::thread::sleep(timeout);
            return Ok(());
        }
        std::thread::sleep(timeout.min(FALLBACK_TICK));
        ready.extend_from_slice(&self.tokens);
        Ok(())
    }
}

/// Raw `epoll` syscall surface. `std` links libc on Linux, so these resolve
/// without any new dependency.
#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::c_int;

    /// Mirror of libc's `struct epoll_event`. On x86-64 the kernel ABI packs
    /// it (no padding between the 32-bit mask and the 64-bit data word);
    /// elsewhere it is plain C layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Level-triggered `epoll` readiness polling (Linux). An idle reactor parks
/// in `epoll_wait`; a connection with buffered bytes is re-reported every
/// poll until drained, so the reactor never needs edge-triggered
/// re-arm bookkeeping.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct EpollPoller {
    epfd: std::os::raw::c_int,
    events: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Largest batch of events one `epoll_wait` returns; level-triggered
    /// polling re-reports anything that didn't fit, so this caps memory, not
    /// correctness.
    const MAX_EVENTS: usize = 64;

    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a flags word and returns a new fd (or
        // -1); no pointers are involved.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            epfd,
            events: vec![sys::EpollEvent { events: 0, data: 0 }; Self::MAX_EVENTS],
        })
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: epfd is a live fd owned by this struct; closing it twice
        // is impossible because Drop runs once.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register(&mut self, stream: &TcpStream, token: usize) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        let mut event = sys::EpollEvent {
            events: sys::EPOLLIN,
            data: token as u64,
        };
        // SAFETY: `event` is a live, properly laid out EpollEvent for the
        // duration of the call; the fd is valid (borrowed from the stream).
        let rc = unsafe {
            sys::epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_ADD,
                stream.as_raw_fd(),
                &mut event,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn deregister(&mut self, stream: &TcpStream, _token: usize) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        // Pre-2.6.9 kernels require a non-null event pointer even for DEL;
        // passing a dummy keeps the call portable across kernel vintages.
        let mut event = sys::EpollEvent { events: 0, data: 0 };
        // SAFETY: same as register — valid fd, valid event pointer.
        let rc = unsafe {
            sys::epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_DEL,
                stream.as_raw_fd(),
                &mut event,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn poll(&mut self, ready: &mut Vec<usize>, timeout: Duration) -> io::Result<()> {
        ready.clear();
        // Sub-millisecond timeouts round *up* so a short poll interval never
        // degenerates into a busy spin (epoll takes whole milliseconds).
        let ms = if timeout.is_zero() {
            0
        } else {
            timeout.as_millis().clamp(1, i32::MAX as u128) as i32
        };
        // SAFETY: `events` is a live buffer of MAX_EVENTS properly
        // initialized EpollEvents; the kernel writes at most `maxevents`
        // entries into it.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.events.as_mut_ptr(),
                self.events.len() as std::os::raw::c_int,
                ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            // A signal interrupting the wait is not an error; the reactor
            // simply polls again on its next tick.
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for event in &self.events[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let token = { event.data };
            ready.push(token as usize);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// Both pollers must drive the same tiny scenario: a registered
    /// connection becomes readable when the peer writes, and deregistering
    /// stops (epoll) or at worst spuriously continues (fallback) reports.
    fn exercise(mut poller: Box<dyn Poller>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller.register(&server_side, 7).unwrap();

        peer.write_all(b"hello").unwrap();
        let mut ready = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller.poll(&mut ready, Duration::from_millis(10)).unwrap();
            if ready.contains(&7) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never became ready");
        }
        let mut buf = [0u8; 16];
        let n = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        poller.deregister(&server_side, 7).unwrap();
        poller.poll(&mut ready, Duration::from_millis(1)).unwrap();
    }

    #[test]
    fn fallback_poller_reports_readiness() {
        exercise(Box::new(FallbackPoller::new()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_poller_reports_readiness() {
        exercise(Box::new(EpollPoller::new().unwrap()));
    }

    #[test]
    fn new_poller_honours_force_fallback() {
        // Must construct on every platform.
        let _ = new_poller(true).unwrap();
        let _ = new_poller(false).unwrap();
    }
}
