//! The event-driven reactor front-end: a small fixed pool of reactor
//! threads, each owning a set of nonblocking connections, driven by
//! readiness polling through the [`Poller`] trait.
//!
//! This is the serving face of [`pba_stream::ConcurrentRouter`], speaking
//! exactly the line protocol of the blocking `pba_stream::server` (same verb
//! table, same replies, same metric names) with a different execution model:
//!
//! * **thread-per-connection → reactor pool.** `ReactorConfig::reactors`
//!   threads serve every connection; the acceptor hands each new socket to a
//!   reactor round-robin via a per-reactor inbox. A thousand idle
//!   connections cost a thousand parked epoll registrations, not a thousand
//!   stacks.
//! * **blocking reads → readiness polling.** Each reactor parks in
//!   [`Poller::poll`] (raw `epoll` on Linux, a portable nonblocking poll
//!   loop elsewhere — see [`crate::poller`]) and only touches sockets with
//!   bytes waiting.
//! * **`String`/`format!` codec → zero-allocation codec.** Requests parse
//!   straight from the byte slices of complete lines in a reusable
//!   per-connection read buffer ([`crate::codec::parse_request`]); replies
//!   render through itoa-style writers into a reusable reply buffer. The
//!   steady-state request path performs **no heap allocation per request**:
//!   the only allocations are O(1) per *batch* (the `Vec<Placement>` a
//!   `route_many` group returns) and amortized buffer growth, both of which
//!   vanish per-request as pipelines deepen. `tests/zero_alloc_codec.rs`
//!   pins the codec itself to literally zero.
//! * **per-line routing → batched runs.** Contiguous already-buffered
//!   `ROUTE` lines execute as one [`route_many`] group (as the blocking
//!   server already did) and — new here — contiguous `RELEASE` lines execute
//!   as one [`release_many`] group, paying one ledger-shard lock per touched
//!   shard and grouped atomic decrements instead of per-ticket overhead.
//!   Grouping never reorders replies: one reply line per request, in order.
//!
//! [`route_many`]: pba_stream::ConcurrentRouter::route_many
//! [`release_many`]: pba_stream::ConcurrentRouter::release_many
//!
//! ## Oversized and truncated lines
//!
//! A request line longer than [`MAX_LINE_LEN`] bytes is answered with
//! `ERR bad-request` (counted under `server.bad_request`), its bytes are
//! discarded up to the next newline, and the connection keeps serving — a
//! hostile unterminated "line" can never balloon the read buffer. A line
//! truncated by the peer closing mid-write is dropped and counted, exactly
//! like the blocking server.
//!
//! ## Metrics
//!
//! With an instrumented router the reactor resolves the same handles the
//! blocking server resolves — `server.connections`, `server.requests`,
//! `server.bad_request`, `server.unknown_ticket`, the
//! `server.route_latency_ns` histogram — so E17 and dashboards work
//! unchanged, plus per-reactor `server.reactor{i}.requests` /
//! `server.reactor{i}.route_latency_ns` for spotting imbalance across the
//! pool. Route latency is recorded in a per-connection
//! [`LocalHistogram`] and fanned out every `MERGE_EVERY` requests:
//! copy-merged into the shared aggregate, drain-merged into the reactor's
//! own histogram.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pba_membership::MembershipPlan;
use pba_model::router::{RouteError, Ticket};
use pba_obs::{Counter, HistogramHandle, LocalHistogram, MetricsRegistry};
use pba_stream::{ConcurrentRouter, MAX_LINE_LEN};

use crate::codec::{
    parse_request, write_err_bad_request, write_err_unknown_ticket, write_ok_bin, write_ok_count,
    write_ok_route, write_ok_staged, write_stats, Request,
};
use crate::poller::{new_poller, Poller};

/// Requests between fan-outs of a connection's local latency histogram into
/// the shared and per-reactor histograms (same cadence as the blocking
/// server).
const MERGE_EVERY: u64 = 4096;

/// Bytes read per `read` call into a reactor's reusable scratch buffer.
const READ_CHUNK: usize = 8192;

/// Configuration for [`ReactorServer::start`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Bind address; the default `127.0.0.1:0` picks a free loopback port
    /// (read it back via [`ReactorServer::local_addr`]).
    pub addr: String,
    /// Reactor threads serving all connections (clamped ≥ 1). Two saturate
    /// the router on small machines; scale with core count for fan-in
    /// benchmarks.
    pub reactors: usize,
    /// Upper bound on one readiness poll — the latency with which an idle
    /// reactor notices shutdown or a newly accepted connection. Also the
    /// acceptor's poll interval. Connections with buffered bytes never wait
    /// on it (level-triggered polling reports them immediately).
    pub poll_interval: Duration,
    /// Shards of the parked-ticket map (contention control; clamped ≥ 1).
    pub ticket_shards: usize,
    /// Forces the portable [`FallbackPoller`](crate::poller::FallbackPoller)
    /// even where epoll is available — tests use this to exercise both
    /// implementations on one machine.
    pub force_fallback_poller: bool,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            reactors: 2,
            poll_interval: Duration::from_millis(1),
            ticket_shards: 16,
            force_fallback_poller: false,
        }
    }
}

/// Server-wide metric handles (resolved iff the router carries a registry);
/// the names are shared with the blocking server so both front-ends feed the
/// same dashboards.
#[derive(Debug, Clone)]
struct NetMetrics {
    connections: Counter,
    requests: Counter,
    bad_request: Counter,
    unknown_ticket: Counter,
    route_latency: HistogramHandle,
}

impl NetMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        Self {
            connections: registry.counter("server.connections"),
            requests: registry.counter("server.requests"),
            bad_request: registry.counter("server.bad_request"),
            unknown_ticket: registry.counter("server.unknown_ticket"),
            route_latency: registry.histogram("server.route_latency_ns"),
        }
    }
}

/// Per-reactor metric handles: `server.reactor{i}.*`.
#[derive(Debug, Clone)]
struct ReactorMetrics {
    requests: Counter,
    route_latency: HistogramHandle,
}

impl ReactorMetrics {
    fn resolve(registry: &MetricsRegistry, index: usize) -> Self {
        Self {
            requests: registry.counter(&format!("server.reactor{index}.requests")),
            route_latency: registry.histogram(&format!("server.reactor{index}.route_latency_ns")),
        }
    }
}

/// Shared state every reactor works against.
struct NetShared {
    router: ConcurrentRouter,
    /// Parked tickets, sharded by `id % shards`. Clients speak ids; only the
    /// server holds real tickets.
    tickets: Vec<Mutex<HashMap<u64, Ticket>>>,
    /// One inbox per reactor: the acceptor pushes new sockets, the owning
    /// reactor drains them at its next tick.
    inboxes: Vec<Mutex<Vec<TcpStream>>>,
    metrics: Option<NetMetrics>,
    shutdown: AtomicBool,
}

impl NetShared {
    fn park(&self, ticket: Ticket) {
        let shard = (ticket.id() as usize) % self.tickets.len();
        self.tickets[shard]
            .lock()
            .expect("ticket shard lock")
            .insert(ticket.id(), ticket);
    }

    fn unpark(&self, id: u64) -> Option<Ticket> {
        let shard = (id as usize) % self.tickets.len();
        self.tickets[shard]
            .lock()
            .expect("ticket shard lock")
            .remove(&id)
    }
}

/// A running reactor TCP front-end over one [`ConcurrentRouter`] (see the
/// [module docs](self) for how it differs from
/// [`pba_stream::SocketServer`]). The wire protocol is identical, so
/// [`pba_stream::LineClient`] works against either.
///
/// ```no_run
/// use pba_net::{ReactorConfig, ReactorServer};
/// use pba_stream::{ConcurrentRouter, LineClient, Policy, StreamConfig};
///
/// let router = ConcurrentRouter::new(
///     StreamConfig::new(64).policy(Policy::TwoChoice).batch_size(128).seed(7),
/// );
/// let server = ReactorServer::start(router, ReactorConfig::default()).unwrap();
/// let mut client = LineClient::connect(server.local_addr()).unwrap();
/// let (bin, id) = client.route(42).unwrap();
/// assert!(bin < 64);
/// assert_eq!(client.release(id).unwrap(), Some(bin));
/// server.shutdown();
/// ```
pub struct ReactorServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ReactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorServer")
            .field("local_addr", &self.local_addr)
            .field("reactors", &self.reactors.len())
            .finish()
    }
}

impl ReactorServer {
    /// Binds `config.addr`, starts the acceptor and the reactor pool. The
    /// server drives `router` (a cheap handle clone; the caller keeps its
    /// own for direct inspection) until [`ReactorServer::shutdown`] or drop.
    pub fn start(router: ConcurrentRouter, config: ReactorConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let reactors = config.reactors.max(1);
        let metrics = router.metrics().map(|m| NetMetrics::resolve(&m.registry));
        let registry = router.metrics().map(|m| Arc::clone(&m.registry));
        let shared = Arc::new(NetShared {
            router,
            tickets: (0..config.ticket_shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            inboxes: (0..reactors).map(|_| Mutex::new(Vec::new())).collect(),
            metrics,
            shutdown: AtomicBool::new(false),
        });
        let mut reactor_handles = Vec::with_capacity(reactors);
        for index in 0..reactors {
            let shared = Arc::clone(&shared);
            let poller = new_poller(config.force_fallback_poller)?;
            let reactor_metrics = registry.as_ref().map(|r| ReactorMetrics::resolve(r, index));
            let poll_interval = config.poll_interval;
            reactor_handles.push(std::thread::spawn(move || {
                Reactor::new(index, shared, poller, reactor_metrics, poll_interval).run()
            }));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            let poll = config.poll_interval;
            std::thread::spawn(move || accept_loop(listener, shared, poll))
        };
        Ok(Self {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            reactors: reactor_handles,
        })
    }

    /// The bound address (the resolved port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router this server drives.
    pub fn router(&self) -> &ConcurrentRouter {
        &self.shared.router
    }

    /// Stops accepting, wakes every reactor at its next poll timeout, and
    /// joins the whole pool. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.reactors.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Polls the non-blocking listener and deals each connection to a reactor
/// inbox round-robin, until shutdown.
fn accept_loop(listener: TcpListener, shared: Arc<NetShared>, poll: Duration) {
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Replies are tiny; without nodelay Nagle + delayed ACK turns
                // every round trip into a multi-millisecond stall.
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                shared.inboxes[next]
                    .lock()
                    .expect("reactor inbox")
                    .push(stream);
                next = (next + 1) % shared.inboxes.len();
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => break,
        }
    }
}

/// One connection owned by a reactor.
struct Conn {
    stream: TcpStream,
    /// Unconsumed request bytes; complete lines are parsed and drained in
    /// place, so in steady state this holds at most one partial line.
    read_buf: Vec<u8>,
    /// Rendered-but-unsent reply bytes (`write_at` marks the sent prefix);
    /// retried every tick until drained.
    write_buf: Vec<u8>,
    write_at: usize,
    /// An oversized line was answered; bytes are being dropped until the
    /// next newline.
    discarding: bool,
    local_latency: LocalHistogram,
    since_merge: u64,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_at: 0,
            discarding: false,
            local_latency: LocalHistogram::new(),
            since_merge: 0,
        }
    }
}

/// One reactor thread: a poller, a slab of connections, and the reusable
/// scratch buffers that keep the request path allocation-free.
struct Reactor {
    index: usize,
    shared: Arc<NetShared>,
    poller: Box<dyn Poller>,
    metrics: Option<ReactorMetrics>,
    poll_interval: Duration,
    /// Slab: token == slot index; `None` slots are on the free list.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    ready: Vec<usize>,
    scratch: Vec<u8>,
    requests: Vec<Request>,
    route_keys: Vec<u64>,
    unparked: Vec<Option<Ticket>>,
    release_run: Vec<Ticket>,
}

impl Reactor {
    fn new(
        index: usize,
        shared: Arc<NetShared>,
        poller: Box<dyn Poller>,
        metrics: Option<ReactorMetrics>,
        poll_interval: Duration,
    ) -> Self {
        Self {
            index,
            shared,
            poller,
            metrics,
            poll_interval,
            conns: Vec::new(),
            free: Vec::new(),
            ready: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
            requests: Vec::new(),
            route_keys: Vec::new(),
            unparked: Vec::new(),
            release_run: Vec::new(),
        }
    }

    fn run(mut self) {
        while !self.shared.shutdown.load(Ordering::Acquire) {
            self.adopt_new_connections();
            let mut ready = std::mem::take(&mut self.ready);
            if self.poller.poll(&mut ready, self.poll_interval).is_err() {
                // A broken poller leaves only the portable behaviour:
                // treat everything as ready so no connection starves.
                ready.clear();
                ready.extend(
                    self.conns
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.is_some())
                        .map(|(i, _)| i),
                );
            }
            for &slot in &ready {
                self.handle_readable(slot);
            }
            self.ready = ready;
            self.retry_pending_writes();
        }
        // Shutdown: fan out whatever latency samples are still local.
        for slot in 0..self.conns.len() {
            if let Some(mut conn) = self.conns[slot].take() {
                self.merge_latency(&mut conn);
            }
        }
    }

    fn adopt_new_connections(&mut self) {
        let incoming = std::mem::take(
            &mut *self.shared.inboxes[self.index]
                .lock()
                .expect("reactor inbox"),
        );
        for stream in incoming {
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            if self.poller.register(&stream, slot).is_err() {
                self.free.push(slot);
                continue;
            }
            if let Some(metrics) = &self.shared.metrics {
                metrics.connections.inc();
            }
            self.conns[slot] = Some(Conn::new(stream));
        }
    }

    /// Reads everything currently buffered on `slot`'s socket, executes the
    /// complete lines, and writes replies. Closes the connection on EOF or
    /// I/O error.
    fn handle_readable(&mut self, slot: usize) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return; // spurious token (fallback poller, or already closed)
        };
        let mut close = false;
        let mut truncated = false;
        loop {
            match (&conn.stream).read(&mut self.scratch) {
                Ok(0) => {
                    close = true;
                    // EOF with a partial line buffered: the request is
                    // truncated — the client may have died halfway through
                    // writing it — so drop it, visibly.
                    truncated = !conn.read_buf.is_empty() && !conn.discarding;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    self.process_lines(&mut conn);
                    if n < READ_CHUNK {
                        break;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if truncated {
            if let Some(metrics) = &self.shared.metrics {
                metrics.bad_request.inc();
            }
        }
        if flush_writes(&mut conn).is_err() {
            close = true;
        }
        if close {
            let _ = self.poller.deregister(&conn.stream, slot);
            self.merge_latency(&mut conn);
            self.free.push(slot);
            // conn drops here, closing the socket.
        } else {
            self.conns[slot] = Some(conn);
        }
    }

    /// Parses every complete line in `conn.read_buf` into the reusable
    /// request vector (handling the oversized-line discard mode), then
    /// executes them with run batching.
    fn process_lines(&mut self, conn: &mut Conn) {
        self.requests.clear();
        let buf = &mut conn.read_buf;
        let mut start = 0usize;
        loop {
            if conn.discarding {
                match buf[start..].iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        start += nl + 1;
                        conn.discarding = false;
                    }
                    None => {
                        start = buf.len();
                        break;
                    }
                }
                continue;
            }
            match buf[start..].iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let line = &buf[start..start + nl];
                    if line.len() > MAX_LINE_LEN {
                        self.requests.push(Request::Bad);
                    } else {
                        self.requests.push(parse_request(line));
                    }
                    start += nl + 1;
                }
                None => {
                    if buf.len() - start > MAX_LINE_LEN {
                        // An unterminated line already over the cap: answer
                        // now, drop bytes until its newline finally shows up.
                        self.requests.push(Request::Bad);
                        conn.discarding = true;
                        start = buf.len();
                    }
                    break;
                }
            }
        }
        buf.drain(..start);
        if !self.requests.is_empty() {
            self.execute(conn);
        }
    }

    /// Executes the parsed requests in order, batching contiguous `ROUTE`
    /// runs through `route_many` and contiguous `RELEASE` runs through
    /// `release_many`. One reply line per request, in request order.
    fn execute(&mut self, conn: &mut Conn) {
        let requests = std::mem::take(&mut self.requests);
        let mut i = 0;
        while i < requests.len() {
            match requests[i] {
                Request::Route { .. } => {
                    let mut end = i + 1;
                    while end < requests.len() && matches!(requests[end], Request::Route { .. }) {
                        end += 1;
                    }
                    self.route_keys.clear();
                    for request in &requests[i..end] {
                        if let Request::Route { key } = request {
                            self.route_keys.push(*key);
                        }
                    }
                    self.count_requests(self.route_keys.len() as u64);
                    let start = Instant::now();
                    let placements = self
                        .shared
                        .router
                        .route_many(&self.route_keys)
                        .expect("routing is infallible");
                    let per_route =
                        start.elapsed().as_nanos() as u64 / self.route_keys.len().max(1) as u64;
                    for placement in placements {
                        conn.local_latency.record(per_route);
                        write_ok_route(&mut conn.write_buf, placement.bin, placement.ticket.id());
                        self.shared.park(placement.ticket);
                    }
                    conn.since_merge += (end - i) as u64;
                    i = end;
                }
                Request::Release { .. } => {
                    let mut end = i + 1;
                    while end < requests.len() && matches!(requests[end], Request::Release { .. }) {
                        end += 1;
                    }
                    self.unparked.clear();
                    for request in &requests[i..end] {
                        if let Request::Release { id } = request {
                            self.unparked.push(self.shared.unpark(*id));
                        }
                    }
                    self.count_requests((end - i) as u64);
                    let unparked = std::mem::take(&mut self.unparked);
                    let mut j = 0;
                    while j < unparked.len() {
                        match unparked[j] {
                            None => {
                                // Never issued (or already released): the
                                // router never saw it, so the server-side
                                // counter is its only trace.
                                self.count_unknown_ticket();
                                write_err_unknown_ticket(&mut conn.write_buf);
                                j += 1;
                            }
                            Some(_) => {
                                self.release_run.clear();
                                while j < unparked.len() {
                                    match unparked[j] {
                                        Some(ticket) => {
                                            self.release_run.push(ticket);
                                            j += 1;
                                        }
                                        None => break,
                                    }
                                }
                                let run = std::mem::take(&mut self.release_run);
                                self.release_batch(&run, conn);
                                self.release_run = run;
                            }
                        }
                    }
                    self.unparked = unparked;
                    conn.since_merge += (end - i) as u64;
                    i = end;
                }
                other => {
                    self.count_requests(1);
                    self.execute_single(other, conn);
                    conn.since_merge += 1;
                    i += 1;
                }
            }
        }
        self.requests = requests;
        if conn.since_merge >= MERGE_EVERY {
            self.merge_latency(conn);
            conn.since_merge = 0;
        }
    }

    /// Releases one maximal run of parked tickets through `release_many`,
    /// preserving the looped semantics exactly: `release_many` stops at the
    /// first failing ticket with everything before it committed, so on error
    /// the prefix gets its `OK` replies, the failing ticket gets
    /// `ERR unknown-ticket`, and the remainder retries as a smaller group.
    fn release_batch(&mut self, run: &[Ticket], conn: &mut Conn) {
        let mut rest = run;
        while !rest.is_empty() {
            match self.shared.router.release_many(rest) {
                Ok(()) => {
                    for ticket in rest {
                        write_ok_bin(&mut conn.write_buf, ticket.bin());
                    }
                    return;
                }
                Err(RouteError::UnknownTicket { ticket }) => {
                    // The router's own `route.rejected_unknown_ticket` has
                    // already counted this.
                    let failed = rest.iter().position(|t| t.id() == ticket.id()).unwrap_or(0);
                    for ticket in &rest[..failed] {
                        write_ok_bin(&mut conn.write_buf, ticket.bin());
                    }
                    self.count_unknown_ticket();
                    write_err_unknown_ticket(&mut conn.write_buf);
                    rest = &rest[failed + 1..];
                }
                Err(RouteError::Exhausted { .. }) => {
                    // Releases cannot exhaust capacity; fail the remainder
                    // visibly rather than loop forever.
                    for _ in rest {
                        self.count_unknown_ticket();
                        write_err_unknown_ticket(&mut conn.write_buf);
                    }
                    return;
                }
            }
        }
    }

    /// Executes one non-batchable request, mirroring the blocking server's
    /// `respond` verb for verb.
    fn execute_single(&mut self, request: Request, conn: &mut Conn) {
        let router = &self.shared.router;
        match request {
            Request::Route { .. } | Request::Release { .. } => {
                unreachable!("batched by execute()")
            }
            Request::Flush => write_ok_count(&mut conn.write_buf, router.flush() as u64),
            Request::Stats => {
                let stats = router.stats();
                write_stats(
                    &mut conn.write_buf,
                    stats.routed,
                    stats.released,
                    stats.resident,
                    stats.batches,
                );
            }
            Request::Add { weight } => {
                router.stage_membership(MembershipPlan::new().add(weight));
                write_ok_staged(&mut conn.write_buf);
            }
            Request::Drain { bin } => {
                router.stage_membership(MembershipPlan::new().drain(bin));
                write_ok_staged(&mut conn.write_buf);
            }
            Request::Remove { bin } => {
                router.stage_membership(MembershipPlan::new().remove(bin));
                write_ok_staged(&mut conn.write_buf);
            }
            Request::Migrate => write_ok_count(&mut conn.write_buf, router.migrate_drained()),
            Request::Bad => {
                if let Some(metrics) = &self.shared.metrics {
                    metrics.bad_request.inc();
                }
                write_err_bad_request(&mut conn.write_buf);
            }
        }
    }

    fn count_requests(&self, n: u64) {
        if let Some(metrics) = &self.shared.metrics {
            metrics.requests.add(n);
        }
        if let Some(metrics) = &self.metrics {
            metrics.requests.add(n);
        }
    }

    fn count_unknown_ticket(&self) {
        if let Some(metrics) = &self.shared.metrics {
            metrics.unknown_ticket.inc();
        }
    }

    /// Fans the connection's local latency histogram out: copy-merge into
    /// the shared `server.route_latency_ns` aggregate, drain-merge into this
    /// reactor's own histogram. Every sample lands in both exactly once.
    fn merge_latency(&self, conn: &mut Conn) {
        if let Some(metrics) = &self.shared.metrics {
            metrics.route_latency.merge_local_copy(&conn.local_latency);
        }
        if let Some(metrics) = &self.metrics {
            metrics.route_latency.merge_local(&mut conn.local_latency);
        } else if self.shared.metrics.is_some() {
            // No per-reactor sink: still reset so the copy-merge above
            // cannot double-count on the next merge.
            conn.local_latency = LocalHistogram::new();
        }
    }

    fn retry_pending_writes(&mut self) {
        for slot in 0..self.conns.len() {
            let pending = self.conns[slot]
                .as_ref()
                .is_some_and(|c| c.write_at < c.write_buf.len());
            if !pending {
                continue;
            }
            let mut conn = self.conns[slot].take().expect("checked above");
            if flush_writes(&mut conn).is_err() {
                let _ = self.poller.deregister(&conn.stream, slot);
                self.merge_latency(&mut conn);
                self.free.push(slot);
            } else {
                self.conns[slot] = Some(conn);
            }
        }
    }
}

/// Writes as much pending reply data as the socket accepts right now.
/// `Ok(())` means "done or would block" (retry next tick); `Err` means the
/// connection is dead.
fn flush_writes(conn: &mut Conn) -> io::Result<()> {
    while conn.write_at < conn.write_buf.len() {
        match (&conn.stream).write(&conn.write_buf[conn.write_at..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.write_at += n,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        }
    }
    conn.write_buf.clear();
    conn.write_at = 0;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_stream::{LineClient, Policy, StreamConfig};
    use std::io::{BufRead, BufReader};

    fn instrumented_server(bins: usize, batch: usize, config: ReactorConfig) -> ReactorServer {
        let registry = Arc::new(MetricsRegistry::new());
        let router = ConcurrentRouter::with_metrics(
            StreamConfig::new(bins)
                .policy(Policy::TwoChoice)
                .batch_size(batch)
                .seed(11),
            registry,
        );
        ReactorServer::start(router, config).expect("bind loopback")
    }

    #[test]
    fn route_release_round_trip_over_tcp() {
        let server = instrumented_server(32, 16, ReactorConfig::default());
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        let mut ids = Vec::new();
        for key in 0..48u64 {
            let (bin, id) = client.route(key).unwrap();
            assert!(bin < 32);
            ids.push(id);
        }
        assert_eq!(server.router().resident(), 48);
        for id in ids {
            assert!(client.release(id).unwrap().is_some());
        }
        assert_eq!(server.router().resident(), 0);
        assert!(server.router().conserves_balls());
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("route.routed"), 48);
        assert_eq!(snap.counter("route.released"), 48);
        assert_eq!(snap.counter("server.requests"), 96);
        assert_eq!(snap.counter("server.connections"), 1);
        assert_eq!(snap.counter("router.stream_batches"), 3);
        let latency = snap.histogram("server.route_latency_ns").expect("recorded");
        assert_eq!(latency.count, 48);
        // The per-reactor breakdown sums to the aggregate.
        let per_reactor: u64 = (0..2)
            .map(|i| snap.counter(&format!("server.reactor{i}.requests")))
            .sum();
        assert_eq!(per_reactor, 96);
    }

    #[test]
    fn round_trip_on_the_fallback_poller() {
        let server = instrumented_server(
            16,
            8,
            ReactorConfig {
                force_fallback_poller: true,
                ..ReactorConfig::default()
            },
        );
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        let mut ids = Vec::new();
        for key in 0..24u64 {
            ids.push(client.route(key).unwrap().1);
        }
        for id in ids {
            assert!(client.release(id).unwrap().is_some());
        }
        assert!(server.router().conserves_balls());
        assert_eq!(server.router().resident(), 0);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_get_one_reply_each_in_order() {
        let server = instrumented_server(16, 8, ReactorConfig::default());
        let addr = server.local_addr();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        raw.write_all(b"ROUTE 1\nROUTE 2\nNONSENSE\nSTATS\nFLUSH\n")
            .unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut replies = Vec::new();
        for _ in 0..5 {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            replies.push(line.trim_end().to_string());
        }
        assert!(replies[0].starts_with("OK "), "{}", replies[0]);
        assert!(replies[1].starts_with("OK "), "{}", replies[1]);
        assert_eq!(replies[2], "ERR bad-request");
        assert!(
            replies[3].starts_with("OK routed 2 released 0 resident 2"),
            "{}",
            replies[3]
        );
        assert_eq!(replies[4], "OK 1", "flush closes the 2-ball open batch");
        assert_eq!(server.router().stats().routed, 2);
        server.shutdown();
    }

    #[test]
    fn pipelined_releases_batch_and_stay_ordered() {
        // ROUTE a pipeline, then RELEASE the whole set in one pipeline with
        // a bogus id spliced into the middle: replies must come back one per
        // line, in order, with exactly one ERR at the splice point.
        let server = instrumented_server(32, 16, ReactorConfig::default());
        let addr = server.local_addr();
        let mut client = LineClient::connect(addr).unwrap();
        let mut ids = Vec::new();
        for key in 0..40u64 {
            ids.push(client.route(key).unwrap().1);
        }
        drop(client);
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        let mut request = String::new();
        for (i, id) in ids.iter().enumerate() {
            if i == 20 {
                request.push_str("RELEASE 999999999\n");
            }
            request.push_str(&format!("RELEASE {id}\n"));
        }
        raw.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        for i in 0..41 {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            if i == 20 {
                assert_eq!(line.trim_end(), "ERR unknown-ticket");
            } else {
                assert!(line.starts_with("OK "), "reply {i}: {line}");
            }
        }
        assert_eq!(server.router().resident(), 0);
        assert!(server.router().conserves_balls());
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("route.released"), 40);
        assert_eq!(snap.counter("server.unknown_ticket"), 1);
    }

    #[test]
    fn oversized_lines_get_bad_request_not_a_hangup() {
        let server = instrumented_server(8, 8, ReactorConfig::default());
        let addr = server.local_addr();
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_nodelay(true).unwrap();
        // One oversized "line" (no newline until far past the cap), then a
        // legitimate request on the same connection.
        let oversized = vec![b'x'; MAX_LINE_LEN * 3];
        raw.write_all(&oversized).unwrap();
        raw.write_all(b"\nROUTE 5\n").unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        assert_eq!(line.trim_end(), "ERR bad-request");
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        assert!(line.starts_with("OK "), "{line}");
        assert_eq!(server.router().stats().routed, 1);
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        assert_eq!(registry.snapshot().counter("server.bad_request"), 1);
    }

    #[test]
    fn mid_line_disconnect_leaves_the_server_serving() {
        let server = instrumented_server(8, 8, ReactorConfig::default());
        let addr = server.local_addr();
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"ROUTE 123").unwrap(); // no newline
            raw.flush().unwrap();
        } // dropped: mid-line disconnect
        let mut client = LineClient::connect(addr).unwrap();
        let (_bin, id) = client.route(9).unwrap();
        assert!(client.release(id).unwrap().is_some());
        assert_eq!(server.router().stats().routed, 1);
        assert!(server.router().conserves_balls());
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        assert_eq!(registry.snapshot().counter("server.bad_request"), 1);
    }

    #[test]
    fn concurrent_clients_share_one_router() {
        let server = instrumented_server(64, 32, ReactorConfig::default());
        let addr = server.local_addr();
        let mut threads = Vec::new();
        for t in 0..4u64 {
            threads.push(std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).unwrap();
                let mut ids = Vec::new();
                for i in 0..100 {
                    ids.push(client.route(t * 1_000 + i).unwrap().1);
                }
                for id in ids {
                    assert!(client.release(id).unwrap().is_some());
                }
            }));
        }
        for thread in threads {
            thread.join().unwrap();
        }
        let mut client = LineClient::connect(addr).unwrap();
        let stats = client.request("STATS").unwrap();
        assert!(
            stats.starts_with("OK routed 400 released 400 resident 0"),
            "{stats}"
        );
        assert!(server.router().conserves_balls());
        server.shutdown();
    }

    #[test]
    fn membership_verbs_drive_a_scale_cycle_over_the_wire() {
        use pba_membership::BinState;
        let registry = Arc::new(MetricsRegistry::new());
        let router = ConcurrentRouter::with_metrics(
            StreamConfig::new(8)
                .policy(Policy::TwoChoice)
                .batch_size(8)
                .seed(11)
                .reserve_bins(1),
            registry,
        );
        let server = ReactorServer::start(router, ReactorConfig::default()).expect("bind");
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        let mut ids = Vec::new();
        for key in 0..32u64 {
            ids.push(client.route(key).unwrap());
        }
        client.stage_drain(3).unwrap();
        client.stage_add(1.0).unwrap();
        for key in 100..108u64 {
            client.route(key).unwrap();
        }
        client.flush().unwrap();
        let states = server.router().bin_states().expect("elastic now");
        assert_eq!(states[3], BinState::Draining);
        assert_eq!(states[8], BinState::Active, "commissioned reserve slot");
        let migrated = client.migrate().unwrap();
        assert_eq!(server.router().tickets_in(3), 0);
        client.stage_remove(3).unwrap();
        for key in 200..208u64 {
            client.route(key).unwrap();
        }
        client.flush().unwrap();
        assert_eq!(server.router().bin_states().unwrap()[3], BinState::Retired);
        // Every parked ticket still redeems, migrated or not.
        for (_, id) in ids {
            assert!(client.release(id).unwrap().is_some());
        }
        assert!(server.router().conserves_balls());
        let registry = Arc::clone(&server.router().metrics().unwrap().registry);
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("membership.drains"), 1);
        assert_eq!(snap.counter("membership.adds"), 1);
        assert_eq!(snap.counter("membership.removes"), 1);
        assert_eq!(snap.counter("membership.migrations"), migrated);
    }
}
