//! # pba-net
//!
//! The **event-driven serving path**: a reactor TCP front-end over
//! [`pba_stream::ConcurrentRouter`], replacing thread-per-connection
//! blocking I/O with a small fixed pool of reactor threads driving
//! nonblocking sockets through readiness polling.
//!
//! * [`reactor`] — [`ReactorServer`]: the front-end itself. Same wire
//!   protocol, same metric names, and bit-identical router effects as
//!   `pba_stream::SocketServer` (a [`pba_stream::LineClient`] works against
//!   either), but contiguous pipelined `ROUTE` runs execute through
//!   `route_many` and contiguous `RELEASE` runs through the new
//!   `release_many` — the departure-side twin of the batched arrival path.
//! * [`poller`] — the [`Poller`] trait with two implementations: raw
//!   level-triggered `epoll` via `extern "C"` bindings on Linux
//!   ([`EpollPoller`]) and a portable nonblocking poll loop
//!   ([`FallbackPoller`]) so tests pass anywhere.
//! * [`codec`] — the zero-allocation line-protocol codec: requests parse
//!   from byte slices in reusable per-connection buffers, replies render
//!   through itoa-style integer writers into a reusable reply buffer. No
//!   `String`, no `format!` in steady state.
//!
//! This crate exists (rather than a `pba_stream::net` module) because
//! `pba-stream` forbids `unsafe`, and the epoll bindings need exactly one
//! well-fenced unsafe block per syscall. All unsafe in this crate lives in
//! [`poller`].
//!
//! ## Quick start
//!
//! ```no_run
//! use pba_net::{ReactorConfig, ReactorServer};
//! use pba_stream::{ConcurrentRouter, LineClient, Policy, StreamConfig};
//!
//! let router = ConcurrentRouter::new(
//!     StreamConfig::new(64).policy(Policy::TwoChoice).batch_size(128).seed(7),
//! );
//! let server = ReactorServer::start(router, ReactorConfig::default()).unwrap();
//! let mut client = LineClient::connect(server.local_addr()).unwrap();
//! let (bin, id) = client.route(42).unwrap();
//! assert_eq!(client.release(id).unwrap(), Some(bin));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod codec;
pub mod poller;
pub mod reactor;

pub use codec::{parse_request, Request, MAX_LINE_LEN};
#[cfg(target_os = "linux")]
pub use poller::EpollPoller;
pub use poller::{new_poller, FallbackPoller, Poller};
pub use reactor::{ReactorConfig, ReactorServer};
