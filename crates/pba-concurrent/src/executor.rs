//! Rayon-based shared-memory round executor.
//!
//! Each synchronous round of a threshold protocol becomes one parallel pass over
//! the unallocated balls: every ball samples its bin from its deterministic
//! `(seed, ball, round)` stream and tries a bounded atomic increment against the
//! round's threshold. Rejected balls are collected and retried next round. The
//! per-bin loads produced this way satisfy exactly the same per-round threshold
//! invariants as the model engines (the accepted *count* per bin is the same; only
//! *which* requester wins differs, which the model leaves arbitrary anyway), so
//! experiment E8 can cross-validate the two and measure parallel speed-up.

use rayon::prelude::*;

use pba_algorithms::schedule::ThresholdSchedule;
use pba_model::rng::ball_round_rng;
use pba_stats::LoadMetrics;

use crate::atomic_bins::AtomicBins;

/// Result of a shared-memory execution.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Final per-bin loads.
    pub loads: Vec<u32>,
    /// Rounds executed.
    pub rounds: usize,
    /// Balls left unallocated when the executor stopped (0 unless the threshold
    /// schedule's total capacity is insufficient).
    pub unallocated: u64,
    /// Total requests issued over all rounds.
    pub requests: u64,
}

impl ConcurrentOutcome {
    /// Load summary of the final allocation.
    pub fn load_metrics(&self) -> LoadMetrics {
        LoadMetrics::from_loads(&self.loads)
    }

    /// Excess of the maximum load over `⌈m/n⌉`.
    pub fn excess(&self, m: u64) -> i64 {
        if self.loads.is_empty() {
            return 0;
        }
        let ideal = m.div_ceil(self.loads.len() as u64);
        self.loads.iter().copied().max().unwrap_or(0) as i64 - ideal as i64
    }
}

/// Runs a fixed-threshold protocol (`T` per bin, degree 1) to completion (or
/// `max_rounds`) on the current rayon thread pool.
pub fn run_concurrent_threshold(
    m: u64,
    n: usize,
    threshold: u32,
    max_rounds: usize,
    seed: u64,
) -> ConcurrentOutcome {
    let thresholds = vec![threshold; max_rounds.max(1)];
    run_rounds(m, n, seed, &thresholds)
}

/// Runs the phase-1 schedule of `A_heavy` (cumulative thresholds per round)
/// followed by a generous fixed-threshold clean-up phase, entirely on atomics.
///
/// This is not a new algorithm — it is the same threshold family executed by a
/// different mechanism — but it exercises the code path a real shared-memory
/// deployment would use.
pub fn run_concurrent_heavy(m: u64, n: usize, seed: u64) -> ConcurrentOutcome {
    let schedule = ThresholdSchedule::new(m, n, 2.0);
    let mut thresholds: Vec<u32> = schedule
        .thresholds
        .iter()
        .map(|&t| t.min(u32::MAX as u64) as u32)
        .collect();
    // Clean-up phase: allow every bin a constant amount of headroom above the
    // final schedule threshold (enough for the O(n) leftovers), and keep retrying
    // under that fixed cap until everything is placed.
    let final_t = schedule.final_threshold() as u32;
    let headroom = ((m.div_ceil(n.max(1) as u64) as u32).saturating_sub(final_t)).saturating_add(4);
    for _ in 0..64u32 {
        thresholds.push(final_t.saturating_add(headroom));
    }
    run_rounds(m, n, seed, &thresholds)
}

/// Core loop: round `r` uses cumulative per-bin threshold `thresholds[r]`.
fn run_rounds(m: u64, n: usize, seed: u64, thresholds: &[u32]) -> ConcurrentOutcome {
    assert!(n > 0 || m == 0, "cannot allocate {m} balls into zero bins");
    let bins = AtomicBins::new(n);
    let mut unallocated: Vec<u64> = (0..m).collect();
    let mut rounds = 0usize;
    let mut requests = 0u64;

    for (round, &threshold) in thresholds.iter().enumerate() {
        if unallocated.is_empty() {
            break;
        }
        rounds += 1;
        requests += unallocated.len() as u64;
        unallocated = unallocated
            .par_iter()
            .filter_map(|&ball| {
                let mut rng = ball_round_rng(seed, ball, round as u64);
                let bin = rng.gen_index(n);
                if bins.try_acquire(bin, threshold) {
                    None
                } else {
                    Some(ball)
                }
            })
            .collect();
    }

    ConcurrentOutcome {
        loads: bins.snapshot(),
        rounds,
        unallocated: unallocated.len() as u64,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_threshold_completes_with_slack() {
        let m = 200_000u64;
        let n = 256usize;
        let t = (m / n as u64) as u32 + 10;
        let out = run_concurrent_threshold(m, n, t, 200, 7);
        assert_eq!(out.unallocated, 0);
        assert_eq!(out.loads.iter().map(|&l| l as u64).sum::<u64>(), m);
        assert!(out.loads.iter().all(|&l| l <= t));
        assert!(out.rounds >= 1);
        assert!(out.requests >= m);
    }

    #[test]
    fn conservation_with_insufficient_capacity() {
        let m = 10_000u64;
        let n = 10usize;
        let t = 500u32;
        let out = run_concurrent_threshold(m, n, t, 100, 3);
        let allocated: u64 = out.loads.iter().map(|&l| l as u64).sum();
        assert_eq!(allocated, (t as u64) * n as u64);
        assert_eq!(allocated + out.unallocated, m);
        assert!(out.loads.iter().all(|&l| l == t));
    }

    #[test]
    fn concurrent_heavy_matches_model_guarantees() {
        let m = 1u64 << 18;
        let n = 1usize << 8;
        let out = run_concurrent_heavy(m, n, 11);
        assert_eq!(
            out.unallocated, 0,
            "concurrent heavy left balls unallocated"
        );
        assert!(out.excess(m) <= 12, "excess {} is not O(1)", out.excess(m));
        // Round count should be small (log log (m/n) + clean-up), certainly far
        // below the naive Ω(log n).
        assert!(out.rounds <= 40, "took {} rounds", out.rounds);
    }

    #[test]
    fn first_round_loads_match_model_engine_exactly() {
        // In round 0 both executions see the same set of unallocated balls, and
        // every ball's target is the same pure function of (seed, ball, 0), so the
        // per-bin accepted counts min(quota, requests) are identical. (From round 1
        // on the *identities* of the rejected balls differ, so only aggregate
        // agreement is expected — covered by the next test.)
        use pba_model::engine::{run_agent_engine, EngineConfig};
        use pba_model::protocol::FixedThresholdProtocol;
        let m = 50_000u64;
        let n = 64usize;
        let t = (m / n as u64) as u32 + 5;
        let concurrent = run_concurrent_threshold(m, n, t, 1, 21);
        let mut protocol = FixedThresholdProtocol::new(t, 1);
        protocol.max_rounds = 1;
        let model = run_agent_engine(&protocol, m, n, 21, &EngineConfig::sequential());
        assert_eq!(concurrent.loads, model.loads);
        assert_eq!(concurrent.unallocated, model.remaining);
    }

    #[test]
    fn full_run_agrees_with_model_engine_in_aggregate() {
        use pba_model::engine::{run_agent_engine, EngineConfig};
        use pba_model::protocol::FixedThresholdProtocol;
        let m = 50_000u64;
        let n = 64usize;
        let t = (m / n as u64) as u32 + 5;
        let concurrent = run_concurrent_threshold(m, n, t, 500, 21);
        let mut protocol = FixedThresholdProtocol::new(t, 1);
        protocol.max_rounds = 500;
        let model = run_agent_engine(&protocol, m, n, 21, &EngineConfig::sequential());
        assert_eq!(concurrent.unallocated, 0);
        assert_eq!(model.remaining, 0);
        let max_c = concurrent.loads.iter().copied().max().unwrap() as i64;
        let max_m = model.loads.iter().copied().max().unwrap() as i64;
        assert!((max_c - max_m).abs() <= 5);
        assert!((concurrent.rounds as i64 - model.rounds as i64).abs() <= 10);
    }

    #[test]
    fn zero_balls_and_zero_rounds() {
        let out = run_concurrent_threshold(0, 8, 5, 10, 1);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.unallocated, 0);
        let out = run_concurrent_threshold(10, 4, 100, 0, 1);
        assert_eq!(out.rounds, 1, "max_rounds is clamped to at least one round");
    }

    #[test]
    fn excess_and_metrics_helpers() {
        let out = ConcurrentOutcome {
            loads: vec![3, 5, 4],
            rounds: 2,
            unallocated: 0,
            requests: 12,
        };
        assert_eq!(out.excess(12), 1);
        assert_eq!(out.load_metrics().max_load, 5);
        let empty = ConcurrentOutcome {
            loads: vec![],
            rounds: 0,
            unallocated: 0,
            requests: 0,
        };
        assert_eq!(empty.excess(5), 0);
    }
}
