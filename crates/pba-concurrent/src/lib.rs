//! # pba-concurrent
//!
//! A shared-memory, truly multi-threaded execution substrate for the paper's
//! threshold protocols. The round-based simulator in [`pba_model`] is the ground
//! truth for the *model-level* quantities (rounds, loads, messages); this crate
//! answers the systems question "what does the protocol look like as an actual
//! parallel program?" and provides the speed-up experiment E8:
//!
//! * [`atomic_bins`] — bins as a flat array of atomic counters. A ball claims a
//!   slot with a bounded `fetch_update`, which is exactly the "bin accepts up to
//!   `T − ℓ` requests" rule of the threshold model, resolved by the hardware's
//!   arbitration instead of the simulator's arrival order.
//! * [`executor`] — a rayon-based round executor: in each round all unallocated
//!   balls try to claim a slot in a uniformly random bin under the round's
//!   threshold; rejected balls retry next round. Supports the `A_heavy` schedule
//!   and fixed thresholds. Rounds run on the workspace-wide **persistent worker
//!   pool** of the rayon shim (the same pool the streaming drain uses), so
//!   per-round dispatch is a channel send, not a thread spawn.
//! * [`actor`] — a crossbeam-channel actor executor: bins are sharded over worker
//!   threads, balls' requests are messages on the shards' channels and accepts
//!   flow back over a result channel. A faithful "message passing" realisation of
//!   the model, used to cross-validate the shared-memory path.
//! * [`epoch`] — [`EpochCell`]: epoch-published load snapshots, the read-side
//!   primitive of the concurrent streaming router (many reader threads clone
//!   the current stale snapshot, one boundary thread swaps in the next and
//!   bumps a monotone epoch).
//! * [`padded`] — [`CachePadded`]: a `#[repr(align(64))]` wrapper giving hot
//!   atomics (per-bin counters, the epoch word) their own cache line, so
//!   writes by one thread stop invalidating their neighbours' lines.
//! * [`speedup`] — wall-clock measurements of one allocation under varying rayon
//!   thread counts (pool-warm: each pool's first run is a discarded warm-up).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod atomic_bins;
pub mod epoch;
pub mod executor;
pub mod padded;
pub mod speedup;

pub use actor::run_actor_threshold;
pub use atomic_bins::AtomicBins;
pub use epoch::EpochCell;
pub use executor::{run_concurrent_heavy, run_concurrent_threshold, ConcurrentOutcome};
pub use padded::CachePadded;
pub use speedup::{measure_speedup, SpeedupPoint};
