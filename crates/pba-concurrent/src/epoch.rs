//! Epoch-published snapshots for concurrent readers.
//!
//! The batched/stale-information model gives every ball of a batch the same
//! load snapshot — the loads *as of the previous batch boundary*. A
//! multi-threaded router therefore needs exactly one concurrency primitive on
//! its read path: a cell holding the current snapshot that many reader
//! threads can clone cheaply while one boundary thread swaps in the next
//! snapshot. [`EpochCell`] is that cell: the value lives behind an `Arc` so a
//! swap is a pointer exchange (readers holding the old `Arc` keep a coherent
//! old snapshot — nothing is ever mutated in place), and every publication
//! bumps a monotone **epoch** counter so observers can tell which batch
//! boundary a snapshot belongs to and verify publication order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::padded::CachePadded;

/// A snapshot cell with monotone epoch publication.
///
/// Readers call [`EpochCell::load`] (a read-lock held only for one `Arc`
/// clone — many readers proceed concurrently); the boundary thread calls
/// [`EpochCell::publish`] to atomically swap in the next snapshot and bump
/// the epoch. The epoch is incremented while the write lock is held, so
/// [`EpochCell::load_with_epoch`] always returns a consistent
/// `(epoch, value)` pair and epochs observed by any reader are
/// non-decreasing.
///
/// The epoch word is [`CachePadded`]: readers poll it on every route while
/// the boundary thread's publish writes it, and without padding it would
/// share a line with the `RwLock` state the readers also touch.
#[derive(Debug)]
pub struct EpochCell<T> {
    epoch: CachePadded<AtomicU64>,
    value: RwLock<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// A cell holding `initial` at epoch 0.
    pub fn new(initial: T) -> Self {
        Self {
            epoch: CachePadded::new(AtomicU64::new(0)),
            value: RwLock::new(Arc::new(initial)),
        }
    }

    /// The epoch of the most recent publication (0 = the initial value).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone; the returned handle stays valid (and unchanged) across later
    /// publications.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.value.read().expect("epoch cell lock"))
    }

    /// The current `(epoch, snapshot)` pair, read consistently: publication
    /// bumps the epoch while holding the write lock, so the pair can never
    /// mix one publication's epoch with another's value.
    pub fn load_with_epoch(&self) -> (u64, Arc<T>) {
        let guard = self.value.read().expect("epoch cell lock");
        (self.epoch.load(Ordering::Acquire), Arc::clone(&guard))
    }

    /// Atomically swaps in `value` as the next snapshot and bumps the epoch;
    /// returns the new epoch. Readers that already hold the previous `Arc`
    /// keep reading the previous (coherent) snapshot.
    pub fn publish(&self, value: T) -> u64 {
        let mut guard = self.value.write().expect("epoch cell lock");
        *guard = Arc::new(value);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn publish_bumps_epoch_and_swaps_value() {
        let cell = EpochCell::new(vec![0u32; 4]);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load(), vec![0; 4]);
        let held = cell.load();
        assert_eq!(cell.publish(vec![1, 2, 3, 4]), 1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load(), vec![1, 2, 3, 4]);
        // A reader that loaded before the swap keeps its coherent snapshot.
        assert_eq!(*held, vec![0; 4]);
        let (epoch, value) = cell.load_with_epoch();
        assert_eq!(epoch, 1);
        assert_eq!(*value, vec![1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_readers_observe_monotone_epochs_and_consistent_pairs() {
        // The publisher stores the epoch inside the value as well, so readers
        // can detect a torn (epoch, value) pair or an epoch going backwards.
        let cell = Arc::new(EpochCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let (epoch, value) = cell.load_with_epoch();
                    assert_eq!(epoch, *value, "epoch/value pair torn");
                    assert!(epoch >= last, "epoch went backwards");
                    last = epoch;
                }
                last
            }));
        }
        for next in 1..=1000u64 {
            assert_eq!(cell.publish(next), next);
        }
        stop.store(true, Ordering::Release);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") <= 1000);
        }
        assert_eq!(cell.epoch(), 1000);
    }
}
