//! Cache-line padding for hot atomics.
//!
//! The route hot path keeps several words that are written by different
//! threads at high rates: per-bin load counters ([`crate::AtomicBins`]) and
//! the epoch word of [`crate::EpochCell`]. Without padding, unrelated words
//! share a 64-byte cache line and every write by one thread invalidates the
//! line for all the others — *false sharing*, the classic silent tax on
//! shared-memory counters. [`CachePadded`] aligns (and therefore sizes) its
//! payload to a cache line so each padded word owns its line outright.
//!
//! 64 bytes is the line size on x86-64 and on most AArch64 parts; on the few
//! machines with bigger lines the padding merely halves the benefit, it never
//! breaks correctness.

use std::ops::{Deref, DerefMut};

/// Aligns `T` to a 64-byte cache line so the padded value never shares a
/// line with a neighbour. `Deref`s to `T`, so call sites are unchanged —
/// only the layout differs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

    #[test]
    fn padded_atomics_are_line_sized_and_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU32>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU32>>(), 64);
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 64);
    }

    #[test]
    fn adjacent_padded_slots_live_on_distinct_lines() {
        let slots: Vec<CachePadded<AtomicU64>> = (0..8)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        for pair in slots.windows(2) {
            let a = &*pair[0] as *const AtomicU64 as usize;
            let b = &*pair[1] as *const AtomicU64 as usize;
            assert_eq!(a % 64, 0, "slot not line-aligned");
            assert!(b - a >= 64, "neighbouring slots share a cache line");
        }
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let padded = CachePadded::new(AtomicU32::new(7));
        padded.fetch_add(1, Ordering::Relaxed);
        assert_eq!(padded.load(Ordering::Relaxed), 8);
        assert_eq!(padded.into_inner().into_inner(), 8);
        let from: CachePadded<u64> = 9u64.into();
        assert_eq!(*from, 9);
    }
}
