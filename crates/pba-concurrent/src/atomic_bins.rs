//! Bins as atomic counters.
//!
//! The threshold rule "a bin with load `ℓ` accepts up to `T − ℓ` requests" maps
//! directly onto a bounded atomic increment: a ball's request succeeds iff the
//! bin's counter was still below the threshold at the moment of the
//! compare-and-swap. Which of several concurrent requesters wins is decided by
//! the hardware — the paper's "arbitrary subset" rule — so the shared-memory
//! execution is a legitimate member of the same algorithm family.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::padded::CachePadded;

/// A fixed-size array of atomic bin load counters.
///
/// Each counter is [`CachePadded`] onto its own cache line: concurrent
/// routers hammer *different* bins from different threads, and without
/// padding sixteen `AtomicU32`s share one 64-byte line, so every placement
/// invalidates the line under fifteen innocent neighbours (false sharing).
/// The cost is 64 bytes per bin instead of 4 — cheap at the bin counts the
/// experiments run, and bounded by the caller choosing `n`.
#[derive(Debug, Default)]
pub struct AtomicBins {
    loads: Vec<CachePadded<AtomicU32>>,
}

impl AtomicBins {
    /// Creates `n` empty bins.
    pub fn new(n: usize) -> Self {
        Self {
            loads: (0..n)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// True when there are no bins.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Attempts to place one ball into `bin` subject to the cumulative threshold
    /// `threshold`. Returns `true` on success. Lock-free; linearises on the
    /// bin's counter.
    pub fn try_acquire(&self, bin: usize, threshold: u32) -> bool {
        self.loads[bin]
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |current| {
                if current < threshold {
                    Some(current + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Unconditionally places one ball into `bin` (no threshold). Used by the
    /// streaming engine, whose policies decide the bin *before* the increment.
    pub fn add(&self, bin: usize) -> u32 {
        self.loads[bin].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Unconditionally places `count` balls into `bin` with one atomic
    /// increment; returns the new load. The batched form of
    /// [`AtomicBins::add`], used when a commit groups placements per bin
    /// (e.g. seeding resident loads) so the counter is touched once instead
    /// of `count` times.
    pub fn add_many(&self, bin: usize, count: u32) -> u32 {
        self.loads[bin].fetch_add(count, Ordering::AcqRel) + count
    }

    /// Removes one ball from `bin` if it is non-empty (ball departure in
    /// dynamic/streaming workloads). Returns `false` when the bin was empty.
    pub fn try_release(&self, bin: usize) -> bool {
        self.loads[bin]
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |current| {
                current.checked_sub(1)
            })
            .is_ok()
    }

    /// Removes up to `count` balls from `bin` with one CAS loop; returns how
    /// many were actually released (fewer than `count` only when the bin ran
    /// out). The batched form of [`AtomicBins::try_release`]: the whole
    /// decrement linearises at a single successful compare-and-swap, so
    /// concurrent releasers can never drive a bin negative between them.
    pub fn try_release_many(&self, bin: usize, count: u32) -> u32 {
        let mut released = 0;
        let _ = self.loads[bin].fetch_update(Ordering::AcqRel, Ordering::Acquire, |current| {
            released = current.min(count);
            Some(current - released)
        });
        released
    }

    /// Current load of `bin` (relaxed read; exact once the round has quiesced).
    pub fn load(&self, bin: usize) -> u32 {
        self.loads[bin].load(Ordering::Acquire)
    }

    /// Snapshot of all loads.
    pub fn snapshot(&self) -> Vec<u32> {
        self.loads
            .iter()
            .map(|l| l.load(Ordering::Acquire))
            .collect()
    }

    /// Sum of all loads.
    pub fn total(&self) -> u64 {
        self.loads
            .iter()
            .map(|l| l.load(Ordering::Acquire) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_acquire_respects_threshold() {
        let bins = AtomicBins::new(2);
        for _ in 0..5 {
            assert!(bins.try_acquire(0, 5));
        }
        assert!(!bins.try_acquire(0, 5));
        assert_eq!(bins.load(0), 5);
        assert_eq!(bins.load(1), 0);
        // Raising the threshold allows more.
        assert!(bins.try_acquire(0, 6));
        assert_eq!(bins.load(0), 6);
        assert_eq!(bins.total(), 6);
        assert_eq!(bins.snapshot(), vec![6, 0]);
    }

    #[test]
    fn add_and_release_roundtrip() {
        let bins = AtomicBins::new(2);
        assert_eq!(bins.add(0), 1);
        assert_eq!(bins.add(0), 2);
        assert_eq!(bins.add(1), 1);
        assert!(bins.try_release(0));
        assert_eq!(bins.load(0), 1);
        assert!(bins.try_release(0));
        assert!(!bins.try_release(0), "empty bin must not go negative");
        assert_eq!(bins.load(0), 0);
        assert_eq!(bins.total(), 1);
    }

    #[test]
    fn batched_add_and_release_clamp_at_zero() {
        let bins = AtomicBins::new(2);
        assert_eq!(bins.add_many(0, 5), 5);
        assert_eq!(bins.add_many(0, 3), 8);
        assert_eq!(bins.add_many(1, 0), 0, "a zero add is a no-op");
        assert_eq!(bins.try_release_many(0, 3), 3);
        assert_eq!(bins.load(0), 5);
        // Releasing more than resident drains the bin and reports the truth.
        assert_eq!(bins.try_release_many(0, 100), 5);
        assert_eq!(bins.load(0), 0);
        assert_eq!(bins.try_release_many(0, 1), 0, "empty bin releases nothing");
        assert_eq!(bins.total(), 0);
    }

    #[test]
    fn concurrent_batched_releases_conserve() {
        // 4 threads release in chunks of 3 from a bin holding 100: exactly
        // 100 releases must succeed in total, never driving the bin negative.
        let bins = Arc::new(AtomicBins::new(1));
        bins.add_many(0, 100);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let bins = Arc::clone(&bins);
            handles.push(std::thread::spawn(move || {
                let mut released = 0u32;
                for _ in 0..20 {
                    released += bins.try_release_many(0, 3);
                }
                released
            }));
        }
        let released: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(released, 100);
        assert_eq!(bins.load(0), 0);
    }

    #[test]
    fn counters_do_not_share_cache_lines() {
        let bins = AtomicBins::new(4);
        for pair in bins.loads.windows(2) {
            let a = &*pair[0] as *const AtomicU32 as usize;
            let b = &*pair[1] as *const AtomicU32 as usize;
            assert_eq!(a % 64, 0, "counter not line-aligned");
            assert!(b - a >= 64, "adjacent bin counters share a cache line");
        }
    }

    #[test]
    fn empty_and_len() {
        let bins = AtomicBins::new(0);
        assert!(bins.is_empty());
        assert_eq!(bins.len(), 0);
        let bins = AtomicBins::new(3);
        assert!(!bins.is_empty());
        assert_eq!(bins.len(), 3);
    }

    #[test]
    fn concurrent_acquires_never_exceed_threshold() {
        // 8 threads hammer a single bin with threshold 1000; exactly 1000 must win.
        let bins = Arc::new(AtomicBins::new(1));
        let threshold = 1000u32;
        let mut handles = Vec::new();
        for _ in 0..8 {
            let bins = Arc::clone(&bins);
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u32;
                for _ in 0..500 {
                    if bins.try_acquire(0, threshold) {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let total_wins: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_wins, threshold);
        assert_eq!(bins.load(0), threshold);
    }

    #[test]
    fn concurrent_acquires_across_many_bins_conserve_totals() {
        let n = 64usize;
        let bins = Arc::new(AtomicBins::new(n));
        let cap = 10u32;
        let mut handles = Vec::new();
        for t in 0..4 {
            let bins = Arc::clone(&bins);
            handles.push(std::thread::spawn(move || {
                let mut accepted = 0u64;
                for i in 0..n as u64 * 20 {
                    let bin = ((i * 31 + t * 17) % n as u64) as usize;
                    if bins.try_acquire(bin, cap) {
                        accepted += 1;
                    }
                }
                accepted
            }));
        }
        let accepted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(accepted, bins.total());
        assert_eq!(bins.total(), (n as u64) * cap as u64);
        assert!(bins.snapshot().iter().all(|&l| l == cap));
    }
}
