//! Wall-clock speed-up measurements (experiment E8).
//!
//! Runs the same shared-memory allocation under rayon thread pools of different
//! sizes and reports wall-clock times. Each pool's **first** run is a discarded
//! warm-up: it pays the one-time pool start-up (worker spawn, lazy allocator
//! warm-up), so the timed run — and therefore the speed-up ratio — reflects
//! steady-state dispatch on a warm pool, which is what a long-running service
//! sees. On a single-core machine the curve is flat (speed-up ≈ 1); the harness
//! still exercises the full parallel code path and reports whatever the
//! hardware provides.

use std::time::Instant;

use crate::executor::run_concurrent_threshold;

/// One point of the speed-up curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Number of rayon worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the allocation.
    pub seconds: f64,
    /// Speed-up relative to the 1-thread measurement of the same sweep.
    pub speedup: f64,
}

/// Measures wall-clock time of a fixed-threshold allocation for each thread
/// count in `thread_counts`. The first entry is used as the baseline for the
/// speed-up column (conventionally 1 thread). Per pool, one untimed warm-up
/// run is discarded so the reported seconds are pool-warm numbers, not
/// one-time spawn cost.
pub fn measure_speedup(
    m: u64,
    n: usize,
    threshold: u32,
    thread_counts: &[usize],
    seed: u64,
) -> Vec<SpeedupPoint> {
    let mut points = Vec::with_capacity(thread_counts.len());
    let mut baseline = None;
    for &threads in thread_counts {
        let threads = threads.max(1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let warmup = pool.install(|| run_concurrent_threshold(m, n, threshold, 10_000, seed));
        assert_eq!(warmup.unallocated, 0, "warm-up run must complete");
        let start = Instant::now();
        let out = pool.install(|| run_concurrent_threshold(m, n, threshold, 10_000, seed));
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(out.unallocated, 0, "speed-up run must complete");
        let base = *baseline.get_or_insert(seconds);
        points.push(SpeedupPoint {
            threads,
            seconds,
            speedup: if seconds > 0.0 { base / seconds } else { 1.0 },
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_point_per_thread_count() {
        let m = 50_000u64;
        let n = 128usize;
        let t = (m / n as u64) as u32 + 10;
        let points = measure_speedup(m, n, t, &[1, 2], 3);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].threads, 1);
        assert_eq!(points[1].threads, 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(points.iter().all(|p| p.seconds >= 0.0));
        assert!(points.iter().all(|p| p.speedup > 0.0));
    }

    #[test]
    fn zero_threads_is_clamped() {
        let points = measure_speedup(10_000, 64, 200, &[0], 1);
        assert_eq!(points[0].threads, 1);
    }
}
