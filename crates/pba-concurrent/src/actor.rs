//! Crossbeam-channel actor executor.
//!
//! A message-passing realisation of one threshold round: the bins are sharded
//! over a handful of worker threads ("bin actors"), each owning the load
//! counters of its shard. Ball requests are sent over the shards' channels; each
//! shard applies the threshold rule to its own bins and reports how many
//! requests it accepted. This mirrors the paper's model (balls *send messages*
//! to bins, bins decide locally) more literally than the shared-memory
//! executor and is used to cross-validate it.

use crossbeam::channel;

use pba_model::rng::ball_round_rng;

use crate::executor::ConcurrentOutcome;

/// A request routed to a bin shard: the index of the bin within the shard.
struct ShardRequest {
    local_bin: u32,
    ball: u64,
}

/// Runs a degree-1 fixed-threshold protocol with `shards` bin-actor threads.
///
/// Semantics are identical to
/// [`run_concurrent_threshold`](crate::executor::run_concurrent_threshold): in
/// each round every unallocated ball contacts one uniformly random bin, and each
/// bin accepts requests while its load is below `threshold`.
pub fn run_actor_threshold(
    m: u64,
    n: usize,
    threshold: u32,
    max_rounds: usize,
    shards: usize,
    seed: u64,
) -> ConcurrentOutcome {
    assert!(n > 0 || m == 0, "cannot allocate {m} balls into zero bins");
    let shards = shards.clamp(1, n.max(1));
    // Shard s owns bins [s·n/shards, (s+1)·n/shards).
    let shard_start = |s: usize| s * n / shards;
    let shard_of_bin = |b: usize| -> usize {
        let mut s = (b * shards) / n.max(1);
        while shard_start(s + 1) <= b && s + 1 < shards {
            s += 1;
        }
        while shard_start(s) > b {
            s -= 1;
        }
        s
    };

    let mut shard_loads: Vec<Vec<u32>> = (0..shards)
        .map(|s| vec![0u32; shard_start(s + 1).max(shard_start(s)) - shard_start(s)])
        .collect();
    let mut unallocated: Vec<u64> = (0..m).collect();
    let mut rounds = 0usize;
    let mut requests = 0u64;

    for round in 0..max_rounds {
        if unallocated.is_empty() {
            break;
        }
        rounds += 1;
        requests += unallocated.len() as u64;

        // Route every ball's request to its bin's shard.
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel::unbounded::<ShardRequest>();
            senders.push(tx);
            receivers.push(rx);
        }
        for &ball in &unallocated {
            let mut rng = ball_round_rng(seed, ball, round as u64);
            let bin = rng.gen_index(n);
            let shard = shard_of_bin(bin);
            let local = (bin - shard_start(shard)) as u32;
            senders[shard]
                .send(ShardRequest {
                    local_bin: local,
                    ball,
                })
                .expect("receiver alive");
        }
        drop(senders);

        // Each shard actor drains its mailbox and applies the threshold rule.
        let results: Vec<(Vec<u32>, Vec<u64>)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .zip(shard_loads.iter())
                .map(|(rx, loads)| {
                    scope.spawn(move |_| {
                        let mut loads = loads.clone();
                        let mut rejected = Vec::new();
                        while let Ok(req) = rx.recv() {
                            let slot = &mut loads[req.local_bin as usize];
                            if *slot < threshold {
                                *slot += 1;
                            } else {
                                rejected.push(req.ball);
                            }
                        }
                        (loads, rejected)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("actor threads do not panic");

        let mut next_unallocated = Vec::new();
        for (s, (loads, rejected)) in results.into_iter().enumerate() {
            shard_loads[s] = loads;
            next_unallocated.extend(rejected);
        }
        // Keep the ball order deterministic across shard interleavings.
        next_unallocated.sort_unstable();
        unallocated = next_unallocated;
    }

    let mut loads = Vec::with_capacity(n);
    for shard in &shard_loads {
        loads.extend_from_slice(shard);
    }
    ConcurrentOutcome {
        loads,
        rounds,
        unallocated: unallocated.len() as u64,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_concurrent_threshold;

    #[test]
    fn completes_and_respects_threshold() {
        let m = 100_000u64;
        let n = 128usize;
        let t = (m / n as u64) as u32 + 8;
        let out = run_actor_threshold(m, n, t, 300, 4, 7);
        assert_eq!(out.unallocated, 0);
        assert_eq!(out.loads.len(), n);
        assert_eq!(out.loads.iter().map(|&l| l as u64).sum::<u64>(), m);
        assert!(out.loads.iter().all(|&l| l <= t));
    }

    #[test]
    fn matches_shared_memory_executor_exactly() {
        // Both executors resolve each round's per-bin accepted count to
        // min(threshold - load, requests); with the same seed the sampled targets
        // are identical in round 0, and because both then carry the *count* of
        // rejected balls per bin forward identically (the rejected identities are
        // resorted deterministically), the final loads agree exactly.
        let m = 30_000u64;
        let n = 64usize;
        let t = (m / n as u64) as u32 + 5;
        let actor = run_actor_threshold(m, n, t, 200, 4, 21);
        let shared = run_concurrent_threshold(m, n, t, 200, 21);
        assert_eq!(actor.unallocated, 0);
        assert_eq!(shared.unallocated, 0);
        let sum_a: u64 = actor.loads.iter().map(|&l| l as u64).sum();
        let sum_s: u64 = shared.loads.iter().map(|&l| l as u64).sum();
        assert_eq!(sum_a, sum_s);
        let max_a = actor.loads.iter().copied().max().unwrap() as i64;
        let max_s = shared.loads.iter().copied().max().unwrap() as i64;
        assert!((max_a - max_s).abs() <= 5);
    }

    #[test]
    fn single_shard_degenerates_gracefully() {
        let m = 5_000u64;
        let n = 16usize;
        let t = (m / n as u64) as u32 + 3;
        let out = run_actor_threshold(m, n, t, 100, 1, 3);
        assert_eq!(out.unallocated, 0);
    }

    #[test]
    fn more_shards_than_bins_is_clamped() {
        let m = 1_000u64;
        let n = 4usize;
        let t = (m / n as u64) as u32 + 2;
        let out = run_actor_threshold(m, n, t, 100, 64, 5);
        assert_eq!(out.unallocated, 0);
        assert_eq!(out.loads.len(), n);
    }

    #[test]
    fn zero_balls() {
        let out = run_actor_threshold(0, 8, 5, 10, 2, 1);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.unallocated, 0);
        assert_eq!(out.loads, vec![0; 8]);
    }

    #[test]
    fn insufficient_capacity_is_reported() {
        let m = 10_000u64;
        let n = 8usize;
        let out = run_actor_threshold(m, n, 100, 50, 2, 9);
        assert_eq!(out.loads.iter().map(|&l| l as u64).sum::<u64>(), 800);
        assert_eq!(out.unallocated, m - 800);
    }
}
