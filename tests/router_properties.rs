//! Property tests for the unified `Router` API:
//!
//! 1. **Release round-trips conservation** — across arbitrary route/release
//!    interleavings every ticket releases exactly once, loads return to zero
//!    when everything is released, and `conserves_balls` holds throughout.
//! 2. **Route ≡ push+drain** — routing keys one at a time through the handle
//!    surface is bit-identical to buffering the same keys and draining them
//!    in batches, for every policy and shard count.
//! 3. **Reweighting suffix equivalence** — `set_weights` applied mid-stream
//!    conserves balls and, from the boundary where it takes effect, drains
//!    bit-identically to a fresh engine constructed with the new weights over
//!    the same resident loads — for every policy, weighted or not.
//! 4. **One-shot adapter fidelity** — `OneShotRouter` over `HeavyAllocator`
//!    (and the baselines) reproduces `allocate()` loads exactly once every
//!    placement is routed, and releases validate.

use proptest::prelude::*;

use parallel_balanced_allocations::model::rng::SplitMix64;
use parallel_balanced_allocations::model::router::{OneShotRouter, RouteError, Router};
use parallel_balanced_allocations::model::weights::BinWeights;
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::{Policy, ReweightLog};

const POLICIES: [Policy; 6] = [
    Policy::OneChoice,
    Policy::TwoChoice,
    Policy::DChoice(3),
    Policy::Threshold { d: 2, slack: 1 },
    Policy::WeightedTwoChoice,
    Policy::CapacityThreshold { d: 2, slack: 2 },
];

/// A 4:2:1 tier mix over `n` bins (n must be a multiple of 8).
fn tier_mix(n: usize) -> BinWeights {
    BinWeights::power_of_two_tiers(&[(n / 8, 2), (n / 4, 1), (5 * n / 8, 0)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Route/release interleavings conserve balls; releasing every live
    /// ticket returns the loads to zero.
    #[test]
    fn release_round_trips_conservation(
        n_exp in 3u32..7,
        batch in 1usize..100,
        waves in 1usize..5,
        per_wave in 1u64..300,
        release_every in 2u64..5,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << n_exp;
        let mut stream = StreamAllocator::new(
            StreamConfig::new(n).batch_size(batch).seed(seed),
        );
        let mut key_rng = SplitMix64::for_stream(seed, 0x70_07, 0);
        let mut live = Vec::new();
        for _ in 0..waves {
            for i in 0..per_wave {
                let placement = stream.route(key_rng.next_u64()).unwrap();
                prop_assert_eq!(placement.bin, placement.ticket.bin());
                if i % release_every == 0 {
                    stream.release(placement.ticket).unwrap();
                } else {
                    live.push(placement.ticket);
                }
            }
            prop_assert!(stream.conserves_balls());
        }
        prop_assert_eq!(stream.resident_tickets() as u64, stream.resident());
        for ticket in live.drain(..) {
            stream.release(ticket).unwrap();
            prop_assert!(stream.conserves_balls());
        }
        prop_assert_eq!(stream.resident(), 0);
        prop_assert_eq!(stream.loads(), vec![0u32; n]);
        let stats = Router::stats(&stream);
        prop_assert_eq!(stats.routed, waves as u64 * per_wave);
        prop_assert_eq!(stats.released, stats.routed);
    }

    /// Handle-based routing is bit-identical to push+drain on the same keys
    /// (full batches; see the engine docs for the partial-batch threshold
    /// caveat).
    #[test]
    fn route_equals_push_drain(
        n_exp in 3u32..7,
        shards in 1usize..9,
        batch_factor in 1usize..5,
        batches in 1u64..20,
        seed in 0u64..1_000,
        policy_idx in 0usize..6,
    ) {
        let n = 1usize << n_exp;
        let policy = POLICIES[policy_idx];
        let batch = n * batch_factor;
        let cfg = StreamConfig::new(n)
            .policy(policy)
            .batch_size(batch)
            .shards(shards)
            .seed(seed)
            .weights(tier_mix(n));
        let mut routed = StreamAllocator::new(cfg.clone());
        let mut pushed = StreamAllocator::new(cfg);
        let mut keys = SplitMix64::for_stream(seed, 0x70_08, 1);
        for _ in 0..(batches * batch as u64) {
            let key = keys.next_u64();
            routed.route(key).unwrap();
            pushed.push(key);
        }
        pushed.drain_ready();
        prop_assert_eq!(routed.loads(), pushed.loads());
        prop_assert_eq!(routed.gap_trajectory(), pushed.gap_trajectory());
        prop_assert_eq!(routed.shard_stats(), pushed.shard_stats());
    }

    /// Mid-stream reweighting conserves balls and the post-boundary drains
    /// match a fresh engine with the new weights and the same resident loads,
    /// bit for bit.
    #[test]
    fn set_weights_suffix_matches_fresh_engine(
        n_exp in 3u32..7,
        prefix_batches in 1u64..12,
        suffix_batches in 1u64..12,
        seed in 0u64..1_000,
        policy_idx in 0usize..6,
        invert in 0usize..2,
    ) {
        let n = 1usize << n_exp;
        let policy = POLICIES[policy_idx];
        let (before, after) = if invert == 1 {
            (tier_mix(n), BinWeights::Uniform)
        } else {
            (BinWeights::Uniform, tier_mix(n))
        };
        let cfg = StreamConfig::new(n)
            .policy(policy)
            .batch_size(n)
            .seed(seed)
            .weights(before);
        let mut stream = StreamAllocator::new(cfg.clone());
        let mut keys = SplitMix64::for_stream(seed, 0x70_09, 2);
        for _ in 0..(prefix_batches * n as u64) {
            stream.push(keys.next_u64());
        }
        stream.drain_ready();
        let loads_at_switch = stream.loads();
        let boundary = stream.gap_trajectory().len();

        stream.set_weights(after.clone());
        let suffix_keys: Vec<u64> = (0..suffix_batches * n as u64)
            .map(|_| keys.next_u64())
            .collect();
        for &key in &suffix_keys {
            stream.push(key);
        }
        stream.drain_ready();
        prop_assert!(stream.conserves_balls());

        let mut fresh =
            StreamAllocator::with_resident_loads(cfg.weights(after), &loads_at_switch);
        for &key in &suffix_keys {
            fresh.push(key);
        }
        fresh.drain_ready();
        prop_assert!(fresh.conserves_balls());
        prop_assert_eq!(fresh.loads(), stream.loads());
        prop_assert_eq!(
            fresh.gap_trajectory(),
            &stream.gap_trajectory()[boundary..]
        );
    }

    /// The one-shot adapter reproduces the wrapped allocator's loads exactly
    /// for any route-call count, and errors cleanly past capacity.
    #[test]
    fn one_shot_router_matches_allocate(
        m in 1u64..3_000,
        n_exp in 2u32..7,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << n_exp;
        let reference = HeavyAllocator::default().allocate(m, n, seed);
        let mut router = OneShotRouter::new(HeavyAllocator::default(), m, n, seed);
        for key in 0..m {
            router.route(key).unwrap();
        }
        prop_assert_eq!(router.loads(), reference.loads);
        prop_assert_eq!(
            router.route(0).unwrap_err(),
            RouteError::Exhausted { capacity: m }
        );
    }
}

/// A reweighting staged mid-batch is deferred to the next boundary — the
/// `ReweightLog` observer pins the exact batch index.
#[test]
fn reweight_fires_at_the_recorded_boundary() {
    use std::sync::{Arc, Mutex};
    let n = 32usize;
    let mut stream = StreamAllocator::new(StreamConfig::new(n).batch_size(n).seed(3));
    let log = Arc::new(Mutex::new(ReweightLog::new()));
    stream.add_observer(log.clone());
    let mut keys = SplitMix64::new(5);
    for _ in 0..(4 * n as u64) {
        stream.route(keys.next_u64()).unwrap();
    }
    stream.set_weights(tier_mix(n));
    assert!(log.lock().unwrap().records().is_empty(), "staged only");
    for _ in 0..(2 * n as u64) {
        stream.route(keys.next_u64()).unwrap();
    }
    let records = log.lock().unwrap().records().to_vec();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].batch_index, 4);
    assert!(!records[0].uniform);
    assert!(stream.conserves_balls());
}

/// The one-shot adapter over every standard baseline reproduces its loads —
/// the `Router` interface really does cover the whole engine landscape.
#[test]
fn one_shot_router_covers_the_baseline_landscape() {
    let m = 2_048u64;
    let n = 64usize;
    let seed = 9u64;
    for baseline in parallel_balanced_allocations::baselines::standard_baselines() {
        let reference = baseline.allocate(m, n, seed);
        let mut router = OneShotRouter::new(&baseline, m, n, seed);
        for key in 0..m {
            router.route(key).unwrap();
        }
        assert_eq!(
            router.loads(),
            reference.loads,
            "adapter diverged for {}",
            router.name()
        );
    }
}

/// Released one-shot placements validate: double releases fail, loads drop.
#[test]
fn one_shot_router_release_validates() {
    let mut router = OneShotRouter::new(HeavyAllocator::default(), 512, 16, 1);
    let mut tickets = Vec::new();
    for key in 0..512u64 {
        tickets.push(router.route(key).unwrap().ticket);
    }
    for &ticket in &tickets {
        router.release(ticket).unwrap();
    }
    assert_eq!(router.loads(), vec![0u32; 16]);
    assert!(matches!(
        router.release(tickets[0]),
        Err(RouteError::UnknownTicket { .. })
    ));
    let stats = router.stats();
    assert_eq!(stats.routed, 512);
    assert_eq!(stats.released, 512);
    assert_eq!(stats.resident, 0);
}
