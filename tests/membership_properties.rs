//! Property tests for **elastic cluster membership** (the `pba-membership`
//! lifecycle wired through both streaming engines):
//!
//! 1. **Strict no-op** — staging an empty membership plan (which still turns
//!    the elastic machinery on: identity active set, topology reads on the
//!    hot path) perturbs nothing: bit-identical placements, loads, gap
//!    trajectories and batch counts versus an untouched twin, for every
//!    policy and weight configuration, on both engines.
//! 2. **Post-drain suffix equivalence** — after a `Drain` takes effect, the
//!    engine's subsequent drains are bit-identical (through the
//!    order-preserving bijection of the sorted active set) to a *fresh*
//!    engine built over only the surviving bins via `with_resident_loads` —
//!    the membership sibling of the PR 3 reweight suffix-equivalence.
//! 3. **1-caller engine equivalence** — `ConcurrentRouter` matches
//!    `StreamAllocator` bit for bit through scale events.
//! 4. **Lifecycle accounting** — a drain → migrate → remove → re-add cycle
//!    conserves balls, loses no tickets, and every accepted/rejected event
//!    and migration shows up in the `membership.*` counters.

use std::sync::Arc;

use parallel_balanced_allocations::membership::BinState;
use parallel_balanced_allocations::model::rng::SplitMix64;
use parallel_balanced_allocations::obs::MetricsRegistry;
use parallel_balanced_allocations::stream::{
    BinWeights, ConcurrentRouter, MembershipPlan, Policy, StreamAllocator, StreamConfig,
};

fn keys(count: u64, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::for_stream(seed, 0x3117, 0);
    (0..count).map(|_| rng.next_u64()).collect()
}

const POLICIES: [Policy; 6] = [
    Policy::OneChoice,
    Policy::TwoChoice,
    Policy::DChoice(3),
    Policy::Threshold { d: 2, slack: 1 },
    Policy::WeightedTwoChoice,
    Policy::CapacityThreshold { d: 2, slack: 2 },
];

fn weight_variants() -> Vec<(&'static str, BinWeights)> {
    vec![
        ("uniform", BinWeights::Uniform),
        (
            "tiers",
            BinWeights::power_of_two_tiers(&[(4, 2), (8, 1), (20, 0)]),
        ),
    ]
}

#[test]
fn empty_plan_is_a_strict_noop_on_the_stream_allocator() {
    for policy in POLICIES {
        for (label, weights) in weight_variants() {
            let cfg = StreamConfig::new(32)
                .policy(policy)
                .batch_size(16)
                .seed(11)
                .weights(weights);
            let mut elastic = StreamAllocator::new(cfg.clone());
            let mut fixed = StreamAllocator::new(cfg);
            for key in keys(100, 1) {
                assert_eq!(
                    elastic.route(key).unwrap().bin,
                    fixed.route(key).unwrap().bin
                );
            }
            // Turn the membership machinery on with an identity (empty) plan
            // mid-batch: nothing may change, down to the RNG stream.
            elastic.stage_membership(MembershipPlan::new());
            for key in keys(200, 2) {
                assert_eq!(
                    elastic.route(key).unwrap().bin,
                    fixed.route(key).unwrap().bin,
                    "policy {} weights {label}",
                    policy.name()
                );
            }
            for key in keys(150, 3) {
                elastic.push(key);
                fixed.push(key);
            }
            elastic.flush();
            fixed.flush();
            assert_eq!(elastic.loads(), fixed.loads());
            assert_eq!(elastic.gap_trajectory(), fixed.gap_trajectory());
            assert_eq!(elastic.snapshot().batches, fixed.snapshot().batches);
            assert!(elastic.membership().is_some(), "machinery is on");
            assert!(elastic.conserves_balls());
        }
    }
}

#[test]
fn empty_plan_is_a_strict_noop_on_the_concurrent_router() {
    for policy in POLICIES {
        for (label, weights) in weight_variants() {
            let cfg = StreamConfig::new(32)
                .policy(policy)
                .batch_size(16)
                .seed(13)
                .weights(weights);
            let elastic = ConcurrentRouter::new(cfg.clone());
            let mut fixed = StreamAllocator::new(cfg);
            for key in keys(100, 4) {
                assert_eq!(
                    elastic.route(key).unwrap().bin,
                    fixed.route(key).unwrap().bin
                );
            }
            elastic.stage_membership(MembershipPlan::new());
            for key in keys(200, 5) {
                assert_eq!(
                    elastic.route(key).unwrap().bin,
                    fixed.route(key).unwrap().bin,
                    "policy {} weights {label}",
                    policy.name()
                );
            }
            elastic.flush();
            fixed.flush();
            assert_eq!(elastic.loads(), fixed.loads());
            assert_eq!(elastic.gap_trajectory(), fixed.gap_trajectory());
            assert!(elastic.conserves_balls());
        }
    }
}

/// After a drain takes effect, every subsequent batch must be bit-identical
/// to a fresh engine built over only the surviving bins (seeded with their
/// loads via `with_resident_loads`), mapped through the sorted active set.
#[test]
fn post_drain_suffix_is_bit_identical_to_a_compacted_fresh_engine() {
    let drained_bin = 5u32;
    for policy in POLICIES {
        for (label, weights) in weight_variants() {
            let bins = 32usize;
            let cfg = StreamConfig::new(bins)
                .policy(policy)
                .batch_size(16)
                .seed(17)
                .weights(weights.clone());
            let mut elastic = StreamAllocator::new(cfg.clone());
            // Grow organically to a boundary (exact multiple of the batch).
            for key in keys(320, 6) {
                elastic.push(key);
            }
            assert_eq!(elastic.drain_ready(), 20);
            elastic.stage_membership(MembershipPlan::new().drain(drained_bin));
            // Force the staged drain to apply (one full batch).
            for key in keys(16, 7) {
                elastic.push(key);
            }
            assert_eq!(elastic.drain_ready(), 1);
            let membership = elastic.membership().expect("elastic now");
            assert_eq!(membership.state(drained_bin as usize), BinState::Draining);
            let active: Vec<u32> = membership.active().to_vec();
            assert_eq!(active.len(), bins - 1);

            // The compacted twin: surviving bins only, surviving weights,
            // seeded with the surviving loads (order-preserving bijection
            // through the sorted active set).
            let elastic_loads = elastic.loads();
            let surviving_loads: Vec<u32> = active
                .iter()
                .map(|&bin| elastic_loads[bin as usize])
                .collect();
            let resolved = cfg.weights.resolve(bins);
            let surviving_weights = match &resolved {
                None => BinWeights::Uniform,
                Some(resolved) => BinWeights::explicit(
                    active
                        .iter()
                        .map(|&bin| resolved.weight(bin as usize))
                        .collect(),
                ),
            };
            let compact_cfg = StreamConfig::new(bins - 1)
                .policy(policy)
                .batch_size(16)
                .seed(17)
                .weights(surviving_weights);
            let mut compact = StreamAllocator::with_resident_loads(compact_cfg, &surviving_loads);

            // Identical suffix: same keys, gathered loads must match the
            // compacted engine's loads batch for batch.
            let before = elastic.gap_trajectory().len();
            for key in keys(480, 8) {
                elastic.push(key);
                compact.push(key);
            }
            assert_eq!(elastic.drain_ready(), compact.drain_ready());
            let elastic_loads = elastic.loads();
            let gathered: Vec<u32> = active
                .iter()
                .map(|&bin| elastic_loads[bin as usize])
                .collect();
            assert_eq!(
                gathered,
                compact.loads(),
                "policy {} weights {label}",
                policy.name()
            );
            assert_eq!(
                elastic.gap_trajectory()[before..],
                compact.gap_trajectory()[..],
                "policy {} weights {label}",
                policy.name()
            );
            assert!(elastic.conserves_balls());
        }
    }
}

#[test]
fn concurrent_single_caller_matches_stream_allocator_through_scale_events() {
    for policy in [
        Policy::TwoChoice,
        Policy::WeightedTwoChoice,
        Policy::CapacityThreshold { d: 2, slack: 2 },
    ] {
        let cfg = StreamConfig::new(16)
            .policy(policy)
            .batch_size(32)
            .seed(23)
            .reserve_bins(4);
        let concurrent = ConcurrentRouter::new(cfg.clone());
        let mut reference = StreamAllocator::new(cfg);
        for key in keys(96, 9) {
            assert_eq!(
                concurrent.route(key).unwrap().bin,
                reference.route(key).unwrap().bin
            );
        }
        // Same scale script on both: drain 3, commission a new bin.
        let plan = || MembershipPlan::new().drain(3).add(1.5);
        concurrent.stage_membership(plan());
        reference.stage_membership(plan());
        for key in keys(160, 10) {
            assert_eq!(
                concurrent.route(key).unwrap().bin,
                reference.route(key).unwrap().bin,
                "policy {}",
                policy.name()
            );
        }
        assert_eq!(concurrent.loads(), reference.loads());
        assert_eq!(concurrent.gap_trajectory(), reference.gap_trajectory());
        assert_eq!(
            concurrent.active_bins().expect("elastic"),
            reference.membership().expect("elastic").active()
        );
        assert_eq!(concurrent.stats().bins, 16, "15 survivors + 1 commissioned");
        assert!(concurrent.conserves_balls());
        assert!(reference.conserves_balls());
    }
}

/// The full lifecycle on the single-threaded engine, with every transition
/// accounted: drain → forced migration → remove at zero occupancy → re-add,
/// plus rejected events (remove-while-occupied, drain-of-drained).
#[test]
fn drain_migrate_remove_add_cycle_conserves_and_accounts() {
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = StreamConfig::new(8).batch_size(8).seed(29);
    let mut stream = StreamAllocator::new(cfg);
    stream.install_metrics(Arc::clone(&registry));
    let mut tickets = Vec::new();
    for key in keys(64, 11) {
        tickets.push(stream.route(key).unwrap());
    }
    let victim = 2u32;
    let victim_tickets = stream.tickets_in(victim as usize);
    assert!(victim_tickets > 0, "the victim bin should hold residents");

    // Drain, plus an illegal remove (still occupied) in the same plan.
    stream.stage_membership(MembershipPlan::new().drain(victim).remove(victim));
    for key in keys(8, 12) {
        stream.route(key).unwrap();
    }
    let membership = stream.membership().expect("elastic");
    assert_eq!(membership.state(victim as usize), BinState::Draining);

    // Forced migration routes every ticketed resident through the live
    // policy; loads move, totals do not.
    let before = stream.resident();
    let migrated = stream.migrate_drained();
    assert_eq!(migrated, victim_tickets as u64);
    assert_eq!(stream.resident(), before, "migration moves, never drops");
    assert_eq!(stream.load(victim as usize), 0);
    assert_eq!(stream.tickets_in(victim as usize), 0);
    assert!(stream.conserves_balls());

    // Now the remove is legal; a second drain of the same bin is not.
    stream.stage_membership(MembershipPlan::new().remove(victim).drain(victim));
    for key in keys(8, 13) {
        stream.route(key).unwrap();
    }
    assert_eq!(
        stream.membership().unwrap().state(victim as usize),
        BinState::Retired
    );

    // Re-commission: the lowest retired slot (the one just removed).
    stream.stage_membership(MembershipPlan::new().add(1.0));
    for key in keys(8, 14) {
        stream.route(key).unwrap();
    }
    assert_eq!(
        stream.membership().unwrap().state(victim as usize),
        BinState::Active
    );

    // Every ticket still redeems — including migrated ones.
    for ticket in tickets {
        stream.release(ticket.ticket).unwrap();
    }
    assert!(stream.conserves_balls());

    let snap = registry.snapshot();
    assert_eq!(snap.counter("membership.adds"), 1);
    assert_eq!(snap.counter("membership.drains"), 1);
    assert_eq!(snap.counter("membership.removes"), 1);
    assert_eq!(snap.counter("membership.migrations"), victim_tickets as u64);
    assert_eq!(snap.counter("membership.rejected_removes"), 1);
    assert_eq!(snap.counter("membership.rejected_drains"), 1);
}

/// The same lifecycle on the shared-handle router while caller threads keep
/// routing: conservation and ticket consistency hold for every interleaving,
/// and undone routes (the drain race) are counted, never silent.
#[test]
fn concurrent_scale_cycle_under_contention_conserves() {
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = StreamConfig::new(16)
        .batch_size(64)
        .seed(31)
        .reserve_bins(2);
    let router = ConcurrentRouter::with_metrics(cfg, Arc::clone(&registry));
    let mut workers = Vec::new();
    for t in 0..4u64 {
        let router = router.clone();
        workers.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(t + 41);
            let mut kept = Vec::new();
            for i in 0..3_000u64 {
                let placement = router.route(rng.next_u64()).unwrap();
                if i % 3 == 0 {
                    kept.push(placement.ticket);
                } else {
                    router.release(placement.ticket).unwrap();
                }
            }
            kept
        }));
    }
    // Scale events race the traffic: drain two bins, migrate, re-add.
    router.stage_membership(MembershipPlan::new().drain(0).drain(7));
    while router.bin_states().expect("elastic")[0] != BinState::Draining {
        std::thread::yield_now();
    }
    router.migrate_drained();
    router.stage_membership(MembershipPlan::new().add(1.0));
    let kept: Vec<_> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("worker"))
        .collect();
    router.flush();
    // Draining bins took no *new* placements after the drain applied and a
    // migration sweep at quiescence leaves them empty.
    router.migrate_drained();
    assert_eq!(router.tickets_in(7), 0);
    assert!(router.conserves_balls());
    assert_eq!(router.resident(), kept.len() as u64);
    assert_eq!(router.resident_tickets(), kept.len());
    for ticket in kept {
        router.release(ticket).unwrap();
    }
    assert_eq!(router.resident(), 0);
    assert!(router.conserves_balls());
    let snap = registry.snapshot();
    assert_eq!(snap.counter("membership.drains"), 2);
    assert_eq!(snap.counter("membership.adds"), 1);
    assert_eq!(snap.counter("route.routed"), 12_000);
    assert_eq!(snap.counter("route.released"), 12_000);
}
