//! Cross-crate integration tests for the execution substrates (experiment E8):
//! the model engines, the shared-memory executor and the actor executor must
//! agree on the aggregate behaviour of the same protocol.

use parallel_balanced_allocations::concurrent::{
    run_actor_threshold, run_concurrent_heavy, run_concurrent_threshold, AtomicBins,
};
use parallel_balanced_allocations::model::engine::{
    run_agent_engine, run_count_engine, EngineConfig,
};
use parallel_balanced_allocations::model::protocol::FixedThresholdProtocol;

#[test]
fn four_substrates_agree_on_aggregate_outcome() {
    let m = 1u64 << 16;
    let n = 1usize << 8;
    let t = (m / n as u64) as u32 + 8;
    let mut protocol = FixedThresholdProtocol::new(t, 1);
    protocol.max_rounds = 10_000;

    let agent = run_agent_engine(&protocol, m, n, 7, &EngineConfig::sequential());
    let count = run_count_engine(&protocol, m, n, 7);
    let shared = run_concurrent_threshold(m, n, t, 10_000, 7);
    let actor = run_actor_threshold(m, n, t, 10_000, 4, 7);

    for (name, loads, remaining) in [
        ("agent", &agent.loads, agent.remaining),
        ("count", &count.loads, count.remaining),
        ("shared", &shared.loads, shared.unallocated),
        ("actor", &actor.loads, actor.unallocated),
    ] {
        assert_eq!(remaining, 0, "{name} left balls behind");
        assert_eq!(
            loads.iter().map(|&l| l as u64).sum::<u64>(),
            m,
            "{name} lost balls"
        );
        assert!(
            loads.iter().all(|&l| l <= t),
            "{name} violated the threshold"
        );
    }

    // Max loads land in the same narrow band (the threshold is the cap).
    let maxes: Vec<u64> = [&agent.loads, &count.loads, &shared.loads, &actor.loads]
        .iter()
        .map(|ls| ls.iter().copied().max().unwrap() as u64)
        .collect();
    let spread = maxes.iter().max().unwrap() - maxes.iter().min().unwrap();
    assert!(spread <= 8, "max loads diverge: {maxes:?}");
}

#[test]
fn shared_memory_heavy_schedule_reproduces_theorem1_load() {
    let m = 1u64 << 18;
    let n = 1usize << 8;
    let out = run_concurrent_heavy(m, n, 3);
    assert_eq!(out.unallocated, 0);
    assert!(out.excess(m) <= 12, "excess {}", out.excess(m));
}

#[test]
fn atomic_bins_used_directly_respect_caps_under_contention() {
    let bins = std::sync::Arc::new(AtomicBins::new(16));
    let cap = 100u32;
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let bins = std::sync::Arc::clone(&bins);
            std::thread::spawn(move || {
                let mut accepted = 0u32;
                for i in 0..2_000u32 {
                    if bins.try_acquire(((i + t) % 16) as usize, cap) {
                        accepted += 1;
                    }
                }
                accepted
            })
        })
        .collect();
    let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total as u64, bins.total());
    assert_eq!(bins.total(), 16 * cap as u64);
}
