//! Property tests for the observability layer.
//!
//! Three families of guarantees:
//!
//! 1. **Metrics are write-only** — installing a `MetricsRegistry` must not
//!    perturb a single placement: the instrumented engines stay bit-identical
//!    to their bare runs for every policy, weighting and caller count (the
//!    allocation path never *reads* a metric, so it cannot steer on one).
//! 2. **The books balance** — under `k` concurrent callers with interleaved
//!    releases, `route.routed − route.released` equals the resident-ticket
//!    count, and the per-bin commit family sums to `route.placed` (the
//!    metrics-side image of the conservation invariant).
//! 3. **No silent drops** — each forced rejection/fallback path (a forged
//!    ticket, the threshold all-above fallthrough, the capacity overflow
//!    retry, the weighted sampler's uniform degradation) must leave a visible
//!    increment in its named counter.

use std::sync::Arc;

use proptest::prelude::*;

use parallel_balanced_allocations::model::rng::SplitMix64;
use parallel_balanced_allocations::model::{BinWeights, Ticket};
use parallel_balanced_allocations::obs::MetricsRegistry;
use parallel_balanced_allocations::stream::{
    ConcurrentRouter, Policy, StreamAllocator, StreamConfig,
};

const POLICIES: [Policy; 6] = [
    Policy::OneChoice,
    Policy::TwoChoice,
    Policy::DChoice(3),
    Policy::Threshold { d: 2, slack: 1 },
    Policy::WeightedTwoChoice,
    Policy::CapacityThreshold { d: 2, slack: 2 },
];

fn keys(count: usize, key_seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::for_stream(key_seed, 0x0b5, 0);
    (0..count).map(|_| rng.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// (1) Bit-identity: for every policy × weighting, the instrumented
    /// `StreamAllocator` and the instrumented 1-caller `ConcurrentRouter`
    /// both produce exactly the loads of the bare `StreamAllocator`.
    #[test]
    fn installed_registry_never_perturbs_placements(
        seed in 1u64..1_000,
        key_seed in 1u64..1_000,
    ) {
        let n = 64usize;
        let batch = 128usize;
        let keys = keys(batch * 3 + 17, key_seed);
        for policy in POLICIES {
            for weights in [
                BinWeights::Uniform,
                BinWeights::power_of_two_tiers(&[(8, 2), (16, 1), (40, 0)]),
            ] {
                let cfg = StreamConfig::new(n)
                    .policy(policy)
                    .batch_size(batch)
                    .seed(seed)
                    .weights(weights);

                let mut bare = StreamAllocator::new(cfg.clone());
                for &key in &keys {
                    bare.route(key).expect("infallible");
                }

                let mut instrumented = StreamAllocator::new(cfg.clone());
                instrumented.install_metrics(Arc::new(MetricsRegistry::new()));
                for &key in &keys {
                    instrumented.route(key).expect("infallible");
                }
                prop_assert_eq!(
                    bare.loads(),
                    instrumented.loads(),
                    "instrumented StreamAllocator diverged under {:?}",
                    policy
                );

                let concurrent = ConcurrentRouter::with_metrics(
                    cfg.clone(),
                    Arc::new(MetricsRegistry::new()),
                );
                for &key in &keys {
                    concurrent.route(key).expect("infallible");
                }
                prop_assert_eq!(
                    bare.loads(),
                    concurrent.loads(),
                    "instrumented 1-caller ConcurrentRouter diverged under {:?}",
                    policy
                );
            }
        }
    }

    /// (2) Under k callers with interleaved releases, the registry's books
    /// balance: `routed − released == resident tickets`, per-bin commits sum
    /// to `placed`, and the batch counter matches the router's boundary book.
    #[test]
    fn counters_balance_under_concurrent_callers(
        seed in 1u64..1_000,
        callers in 1usize..=4,
    ) {
        let n = 32usize;
        let per_caller = 300u64;
        let registry = Arc::new(MetricsRegistry::new());
        let router = ConcurrentRouter::with_metrics(
            StreamConfig::new(n).batch_size(64).seed(seed),
            Arc::clone(&registry),
        );
        std::thread::scope(|scope| {
            for t in 0..callers {
                let router = router.clone();
                scope.spawn(move || {
                    let mut rng = SplitMix64::for_stream(seed, 0x0b52, t as u64);
                    let mut open: Vec<Ticket> = Vec::new();
                    for _ in 0..per_caller {
                        let placement =
                            router.route(rng.next_u64()).expect("infallible");
                        open.push(placement.ticket);
                        // Release roughly every third routed ball, from the
                        // middle, so releases interleave with routes.
                        if open.len() > 2 && rng.next_u64().is_multiple_of(3) {
                            let ticket = open.swap_remove(open.len() / 2);
                            router.release(ticket).expect("own ticket releases once");
                        }
                    }
                });
            }
        });
        let snap = registry.snapshot();
        let routed = snap.counter("route.routed");
        let released = snap.counter("route.released");
        prop_assert_eq!(routed, callers as u64 * per_caller);
        prop_assert_eq!(
            routed - released,
            router.resident_tickets() as u64,
            "routed − released must equal resident tickets at quiescence"
        );
        prop_assert_eq!(routed - released, router.resident());
        let commits: u64 = snap
            .counter_vecs
            .get("route.bin_commits")
            .expect("bin commit family")
            .iter()
            .sum();
        prop_assert_eq!(commits, snap.counter("route.placed"));
        prop_assert_eq!(commits, routed, "route-path placements all commit");
        prop_assert_eq!(snap.counter("router.stream_batches"), router.batches());
        prop_assert!(router.conserves_balls());
    }
}

/// (3a) A forged ticket is rejected by both engines and the rejection is
/// visible in `route.rejected_unknown_ticket` — never silently dropped.
#[test]
fn forged_tickets_increment_the_rejection_counter() {
    let registry = Arc::new(MetricsRegistry::new());
    let mut stream = StreamAllocator::new(StreamConfig::new(8).batch_size(8).seed(3));
    stream.install_metrics(Arc::clone(&registry));
    let placement = stream.route(11).expect("infallible");
    assert!(stream.release(Ticket::new(99, 0)).is_err());
    assert!(stream.release(placement.ticket).is_ok());
    // Double release: the ticket is no longer resident.
    assert!(stream.release(placement.ticket).is_err());
    assert_eq!(
        registry.snapshot().counter("route.rejected_unknown_ticket"),
        2
    );

    let registry = Arc::new(MetricsRegistry::new());
    let router = ConcurrentRouter::with_metrics(
        StreamConfig::new(8).batch_size(8).seed(3),
        Arc::clone(&registry),
    );
    let placement = router.route(11).expect("infallible");
    assert!(router.release(Ticket::new(99, 0)).is_err());
    assert!(router.release(placement.ticket).is_ok());
    assert!(router.release(placement.ticket).is_err());
    assert_eq!(
        registry.snapshot().counter("route.rejected_unknown_ticket"),
        2
    );
}

/// Routes `fill` balls, releases all but a few, then routes one more batch.
/// After the mass release the *fresh* resident count (which prices the next
/// batch's thresholds) is far below the *stale* snapshot loads (published at
/// the last boundary, before the releases) — so every candidate of the next
/// batch sits at/above its threshold and the policy's overflow path must
/// fire. Returns the registry for counter assertions.
fn run_overflow_scenario(policy: Policy) -> Arc<MetricsRegistry> {
    let registry = Arc::new(MetricsRegistry::new());
    let batch = 64usize;
    let mut stream = StreamAllocator::new(
        StreamConfig::new(4)
            .policy(policy)
            .batch_size(batch)
            .seed(5),
    );
    stream.install_metrics(Arc::clone(&registry));
    let mut tickets = Vec::new();
    for key in keys(4 * batch, 9) {
        tickets.push(stream.route(key).expect("infallible").ticket);
    }
    // Stale loads now show ~64 balls per bin; dropping the resident count to
    // 16 prices the next batch's thresholds at ~(16+64)/4 = 20 ≪ 64.
    for ticket in tickets.drain(16..) {
        stream.release(ticket).expect("own ticket releases once");
    }
    for key in keys(batch, 11) {
        stream.route(key).expect("infallible");
    }
    assert!(stream.conserves_balls());
    registry
}

/// (3b) The threshold policy's all-above fallthrough (stale loads at/above
/// the batch threshold) is counted in `policy.threshold_fallback`.
#[test]
fn threshold_fallback_path_is_visible() {
    let registry = run_overflow_scenario(Policy::Threshold { d: 2, slack: 0 });
    let snap = registry.snapshot();
    assert!(
        snap.counter("policy.threshold_fallback") > 0,
        "a post-release batch must find every candidate above the threshold"
    );
}

/// (3c) The capacity policy's overflow retry and the both-sets-overflowed
/// concession are counted.
#[test]
fn capacity_overflow_paths_are_visible() {
    let registry = run_overflow_scenario(Policy::CapacityThreshold { d: 2, slack: 0 });
    let snap = registry.snapshot();
    assert!(
        snap.counter("policy.overflow_retry") > 0,
        "a post-release batch must overflow every first-set capacity share"
    );
    assert!(
        snap.counter("policy.overflow_fallback") > 0,
        "the retry set draws from the same overflowing bins"
    );
}

/// (3d) The weighted sampler's uniform degradation under near-degenerate
/// skew (the alias table's distinct-candidate collision cap) is counted in
/// `policy.weighted_uniform_fallback`.
#[test]
fn weighted_uniform_fallback_path_is_visible() {
    let registry = Arc::new(MetricsRegistry::new());
    // 2^24 : 1 capacity skew across 4 bins: the alias table almost always
    // draws the huge bin, so sampling two *distinct* candidates hits the
    // collision cap and degrades to uniform draws.
    let weights = BinWeights::power_of_two_tiers(&[(1, 24), (3, 0)]);
    let mut stream = StreamAllocator::new(
        StreamConfig::new(4)
            .policy(Policy::WeightedTwoChoice)
            .batch_size(64)
            .seed(7)
            .weights(weights),
    );
    stream.install_metrics(Arc::clone(&registry));
    for key in keys(512, 13) {
        stream.route(key).expect("infallible");
    }
    let snap = registry.snapshot();
    assert!(
        snap.counter("policy.weighted_uniform_fallback") > 0,
        "near-degenerate skew must degrade distinct sampling to uniform draws"
    );
    assert!(stream.conserves_balls());
}
