//! Counting-allocator proof of the serving codec's zero-allocation claim:
//! once a connection's reply buffer has warmed up, parsing any request line
//! and rendering its reply touches the heap **zero** times. This is the
//! per-request steady state of the reactor front-end — buffers live per
//! connection and are reused, so heap traffic per request is exactly what
//! this test measures.
//!
//! The counter is a thin `#[global_allocator]` wrapper; this file is its
//! own integration binary so the counter sees only this test's traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use parallel_balanced_allocations::net::codec::{
    parse_request, write_err_bad_request, write_err_unknown_ticket, write_ok_bin, write_ok_count,
    write_ok_route, write_ok_staged, write_stats, Request,
};

/// System allocator with an allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_parse_and_render_never_touch_the_heap() {
    // The request mix every reply writer and every parse arm sees at least
    // once, including the malformed/error paths.
    let lines: &[&[u8]] = &[
        b"ROUTE 8412974097",
        b"RELEASE 90833",
        b"ROUTE 17",
        b"  ROUTE  42  ",
        b"RELEASE 18446744073709551615",
        b"STATS",
        b"FLUSH",
        b"ADD 1.5 3",
        b"DRAIN 7",
        b"REMOVE 7",
        b"MIGRATE",
        b"ROUTE notanumber",
        b"",
        b"\xff\xfeGARBAGE",
    ];
    // Warm-up: grows the reply buffer to its steady-state capacity (the
    // longest reply in the mix) — the one legitimate allocation a real
    // connection pays once, not per request.
    let mut reply: Vec<u8> = Vec::new();
    let render = |reply: &mut Vec<u8>, line: &[u8], salt: u64| {
        reply.clear();
        match parse_request(line) {
            Request::Route { key } => write_ok_route(reply, (key % 256) as usize, salt),
            Request::Release { id } => write_ok_bin(reply, (id % 256) as usize),
            Request::Flush => write_ok_count(reply, salt),
            Request::Stats => write_stats(reply, salt, salt / 2, salt / 2, salt / 256),
            Request::Add { .. } | Request::Drain { .. } | Request::Remove { .. } => {
                write_ok_staged(reply)
            }
            Request::Migrate => write_ok_count(reply, salt),
            Request::Bad => {
                // Both error writers, so each is pinned allocation-free.
                write_err_bad_request(reply);
                reply.clear();
                write_err_unknown_ticket(reply);
            }
        }
    };
    for (i, line) in lines.iter().enumerate() {
        render(&mut reply, line, u64::MAX - i as u64);
    }
    // Steady state: 10k requests through the warmed buffer — zero heap
    // traffic, the property the reactor's per-connection buffers rely on.
    let allocs = allocations_during(|| {
        for i in 0..10_000u64 {
            let line = lines[(i % lines.len() as u64) as usize];
            render(&mut reply, line, i);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state parse+render must not allocate (got {allocs} allocations over 10k requests)"
    );
    assert!(!reply.is_empty(), "the loop really rendered replies");
}

#[test]
fn parse_alone_never_allocates_even_cold() {
    // Parsing has no buffer at all — it is allocation-free from the first
    // byte, warm-up or not, across valid and malformed lines.
    let lines: &[&[u8]] = &[
        b"ROUTE 1",
        b"RELEASE 2",
        b"ADD 2.25 31",
        b"STATS",
        b"garbage here",
        b"\x80\x81\x82",
    ];
    let allocs = allocations_during(|| {
        let mut routes = 0u64;
        for i in 0..1_000u64 {
            let line = lines[(i % lines.len() as u64) as usize];
            if matches!(parse_request(line), Request::Route { .. }) {
                routes += 1;
            }
        }
        assert!(routes > 0);
    });
    assert_eq!(allocs, 0, "parse_request allocated {allocs} times");
}
