//! Property-based tests (proptest) for the workspace-wide invariants:
//! conservation of balls, threshold caps, determinism, and schedule sanity,
//! over randomly drawn instance sizes and seeds.

use proptest::prelude::*;

use parallel_balanced_allocations::algorithms::schedule::ThresholdSchedule;
use parallel_balanced_allocations::algorithms::{
    AsymmetricAllocator, HeavyAllocator, LightAllocator, NaiveThresholdAllocator, TrivialAllocator,
};
use parallel_balanced_allocations::model::engine::{run_agent_engine, EngineConfig};
use parallel_balanced_allocations::model::protocol::FixedThresholdProtocol;
use parallel_balanced_allocations::model::Allocator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every allocator in the workspace conserves balls and never reports an
    /// incomplete allocation on feasible instances.
    #[test]
    fn allocators_conserve_and_complete(
        n in 2usize..200,
        ratio in 1u64..64,
        seed in 0u64..1_000,
    ) {
        let m = n as u64 * ratio;
        let allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(HeavyAllocator::default()),
            Box::new(AsymmetricAllocator::default()),
            Box::new(NaiveThresholdAllocator::new(2, 1)),
            Box::new(TrivialAllocator),
        ];
        for alloc in allocators {
            let out = alloc.allocate(m, n, seed);
            prop_assert!(out.conserves_balls(m), "{} does not conserve", alloc.name());
            prop_assert!(out.is_complete(m), "{} incomplete", alloc.name());
            prop_assert_eq!(out.loads.len(), n);
        }
    }

    /// The heavy allocator's excess stays O(1) over random instances.
    #[test]
    fn heavy_excess_is_bounded(
        n_exp in 5u32..10,
        ratio_exp in 2u32..12,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << n_exp;
        let m = (n as u64) << ratio_exp;
        let out = HeavyAllocator::default().allocate(m, n, seed);
        prop_assert!(out.is_complete(m));
        prop_assert!(out.excess(m) <= 10, "excess {}", out.excess(m));
    }

    /// A_light never exceeds its capacity and always terminates for u ≤ n balls.
    #[test]
    fn light_respects_capacity(
        n_exp in 6u32..13,
        frac in 1u64..=4,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << n_exp;
        let u = (n as u64) * frac / 4;
        let out = LightAllocator::default().allocate(u, n, seed);
        prop_assert!(out.is_complete(u));
        prop_assert!(out.max_load() <= 2);
    }

    /// The agent engine respects per-bin thresholds and conserves balls even when
    /// the total capacity is insufficient.
    #[test]
    fn engine_threshold_cap_and_conservation(
        n in 2usize..128,
        ratio in 1u64..32,
        threshold in 1u32..64,
        seed in 0u64..1_000,
    ) {
        let m = n as u64 * ratio;
        let mut protocol = FixedThresholdProtocol::new(threshold, 1);
        protocol.max_rounds = 256;
        let r = run_agent_engine(&protocol, m, n, seed, &EngineConfig::sequential());
        prop_assert!(r.loads.iter().all(|&l| l <= threshold));
        let allocated: u64 = r.loads.iter().map(|&l| l as u64).sum();
        prop_assert_eq!(allocated + r.remaining, m);
    }

    /// Allocations are a pure function of (m, n, seed).
    #[test]
    fn determinism_per_seed(
        n in 2usize..128,
        ratio in 1u64..32,
        seed in 0u64..1_000,
    ) {
        let m = n as u64 * ratio;
        let a = HeavyAllocator::default().allocate(m, n, seed);
        let b = HeavyAllocator::default().allocate(m, n, seed);
        prop_assert_eq!(a.loads, b.loads);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.messages, b.messages);
    }

    /// Threshold schedules are monotone, stay below the mean, and their leftover
    /// prediction is O(n).
    #[test]
    fn schedule_invariants(
        n_exp in 4u32..12,
        ratio_exp in 3u32..20,
    ) {
        let n = 1usize << n_exp;
        let m = (n as u64) << ratio_exp;
        let s = ThresholdSchedule::new(m, n, 2.0);
        let mean = m / n as u64;
        let mut prev = 0u64;
        for &t in &s.thresholds {
            prop_assert!(t >= prev);
            prop_assert!(t < mean);
            prev = t;
        }
        if s.rounds() > 0 {
            // The schedule may stop one step early when integer flooring stalls progress,
            // so the leftover prediction is O(n) with a small constant rather than exactly 2n.
            prop_assert!(s.predicted_leftover() <= 4.0 * n as f64 + 1.0);
        }
    }
}
