//! Property tests for the execution layer: results are **bit-identical for
//! any worker count**.
//!
//! The persistent worker pool under the rayon shim (and the dedicated pools a
//! `StreamConfig::num_threads` engine owns) may cut every batch into a
//! different number of chunks, but parallelism only ever partitions index
//! ranges — it never reorders RNG consumption — so the sequential drain, the
//! sharded parallel drain under 1/2/4 workers, and the synchronous
//! `Router::route` stream must all produce the same loads, gap trajectories
//! and shard stats, for all six policies, weighted and unweighted.
//!
//! Batch size 4096 is chosen to genuinely cross the parallel cutoffs
//! (`CHOOSE_MIN_BALLS_PER_WORKER`, `PARALLEL_APPLY_MIN_BATCH`) so the pooled
//! code paths are exercised even where the ambient machine is single-core.

use proptest::prelude::*;

use parallel_balanced_allocations::model::rng::SplitMix64;
use parallel_balanced_allocations::model::BinWeights;
use parallel_balanced_allocations::stream::{Policy, StreamAllocator, StreamConfig};

/// All six streaming policies (the weight-aware ones degrade to their
/// unweighted twins under uniform weights — still distinct code paths).
const POLICIES: [Policy; 6] = [
    Policy::OneChoice,
    Policy::TwoChoice,
    Policy::DChoice(3),
    Policy::Threshold { d: 2, slack: 1 },
    Policy::WeightedTwoChoice,
    Policy::CapacityThreshold { d: 2, slack: 2 },
];

const BATCH: usize = 4096;
const BATCHES: usize = 4;

fn keys(count: usize, key_seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::for_stream(key_seed, 0xec5, 0);
    (0..count).map(|_| rng.next_u64()).collect()
}

fn weightings(n: usize) -> [BinWeights; 2] {
    [
        BinWeights::Uniform,
        BinWeights::power_of_two_tiers(&[(n / 8, 2), (n / 4, 1), (5 * n / 8, 0)]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Sequential drain ≡ sharded drain under 1, 2 and 4 workers, for every
    /// policy and weighting.
    #[test]
    fn drains_are_bit_identical_for_any_worker_count(
        seed in 0u64..1_000,
        key_seed in 0u64..1_000,
    ) {
        let n = 64usize;
        let stream_keys = keys(BATCH * BATCHES, key_seed);
        for weights in weightings(n) {
            for policy in POLICIES {
                let cfg = StreamConfig::new(n)
                    .policy(policy)
                    .batch_size(BATCH)
                    .shards(8)
                    .seed(seed)
                    .weights(weights.clone());
                let mut reference = StreamAllocator::new(cfg.clone().sequential());
                for &key in &stream_keys {
                    reference.push(key);
                }
                reference.flush();
                prop_assert!(reference.conserves_balls());
                for threads in [1usize, 2, 4] {
                    let mut sharded =
                        StreamAllocator::new(cfg.clone().num_threads(threads));
                    for &key in &stream_keys {
                        sharded.push(key);
                    }
                    sharded.flush();
                    prop_assert_eq!(
                        sharded.loads(),
                        reference.loads(),
                        "loads diverged: policy {}, weights {}, threads {}",
                        policy.name(),
                        weights.name(),
                        threads
                    );
                    prop_assert_eq!(
                        sharded.gap_trajectory(),
                        reference.gap_trajectory(),
                        "gap trajectory diverged: policy {}, threads {}",
                        policy.name(),
                        threads
                    );
                    prop_assert_eq!(
                        sharded.shard_stats(),
                        reference.shard_stats(),
                        "shard stats diverged: policy {}, threads {}",
                        policy.name(),
                        threads
                    );
                }
            }
        }
    }

    /// The synchronous `Router::route` stream reproduces the drained engines
    /// bit for bit under every worker count (full batches, so the threshold
    /// policies' projected batch length equals the true one).
    #[test]
    fn route_streams_are_bit_identical_for_any_worker_count(
        seed in 0u64..1_000,
        key_seed in 0u64..1_000,
    ) {
        let n = 64usize;
        let stream_keys = keys(BATCH * BATCHES, key_seed);
        for weights in weightings(n) {
            for policy in POLICIES {
                let cfg = StreamConfig::new(n)
                    .policy(policy)
                    .batch_size(BATCH)
                    .shards(8)
                    .seed(seed)
                    .weights(weights.clone());
                let mut reference = StreamAllocator::new(cfg.clone().sequential());
                for &key in &stream_keys {
                    reference.push(key);
                }
                reference.flush();
                for threads in [1usize, 2, 4] {
                    let mut routed = StreamAllocator::new(cfg.clone().num_threads(threads));
                    for &key in &stream_keys {
                        routed.route(key).expect("streaming route is infallible");
                    }
                    prop_assert_eq!(
                        routed.loads(),
                        reference.loads(),
                        "route loads diverged: policy {}, weights {}, threads {}",
                        policy.name(),
                        weights.name(),
                        threads
                    );
                    prop_assert_eq!(
                        routed.gap_trajectory(),
                        reference.gap_trajectory(),
                        "route gap trajectory diverged: policy {}, threads {}",
                        policy.name(),
                        threads
                    );
                    prop_assert!(routed.conserves_balls());
                    prop_assert_eq!(routed.resident_tickets(), stream_keys.len());
                }
            }
        }
    }
}
