//! Smoke tests for the experiment harness (quick mode): every experiment
//! E1–E19 produces non-empty tables with the expected shape, and the Markdown
//! report embeds all of them. These are the same entry points the `pba-bench`
//! binaries and EXPERIMENTS.md use.

use parallel_balanced_allocations::workloads::experiments;
use parallel_balanced_allocations::workloads::report::render_experiments_markdown;

#[test]
fn all_quick_experiments_produce_tables() {
    let tables = experiments::all_experiments(true);
    // E1, E2, E3, E4(2), E5, E6, E7, E8(2), E9(2), E10, E11, E12, E13, E14,
    // E15, E16, E17, E18, E19 = 22.
    assert_eq!(tables.len(), 22);
    for table in &tables {
        assert!(table.n_rows() > 0, "table '{}' is empty", table.title());
        assert!(table.n_cols() >= 3, "table '{}' too narrow", table.title());
    }
}

#[test]
fn markdown_report_covers_every_experiment() {
    let tables = experiments::all_experiments(true);
    let md = render_experiments_markdown(&tables);
    for prefix in [
        "E1", "E2", "E3", "E4a", "E4b", "E5", "E6", "E7", "E8a", "E8b", "E9a", "E9b", "E10", "E11",
        "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
    ] {
        assert!(
            md.contains(&format!("### {prefix}")),
            "report is missing section {prefix}"
        );
    }
    assert!(md.contains("Claim reproduced"));
}

#[test]
fn e7_baseline_table_contains_every_algorithm() {
    let table = experiments::e7_baselines(true);
    let text = table.render_text();
    for name in [
        "single-choice",
        "greedy[2]",
        "always-go-left[2]",
        "batched-2-choice",
        "naive-threshold",
        "trivial-deterministic",
        "A_heavy",
        "asymmetric-superbin",
    ] {
        assert!(text.contains(name), "E7 table is missing {name}");
    }
}

#[test]
fn e5_asymmetric_rounds_stay_constant_across_ratios() {
    let table = experiments::e5_asymmetric(true);
    let max_rounds: Vec<f64> = table
        .rows()
        .iter()
        .map(|r| r[3].0.parse::<f64>().unwrap())
        .collect();
    assert!(!max_rounds.is_empty());
    assert!(
        max_rounds.iter().cloned().fold(0.0, f64::max) <= 10.0,
        "asymmetric round counts {max_rounds:?} are not constant-like"
    );
}
