//! Cross-crate "shape" tests: fit power-law exponents to the measured sweeps and
//! check they match the exponents the paper's theorems predict. This is the
//! closest thing to comparing a figure's *shape* against the paper: who grows,
//! at what rate, and who stays flat.

use parallel_balanced_allocations::baselines::SingleChoiceAllocator;
use parallel_balanced_allocations::lowerbound::claim5::measure_overload_probability;
use parallel_balanced_allocations::lowerbound::rejection::{
    run_rejection_phase, uniform_capacities,
};
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stats::power_law_exponent;

/// Single-choice excess grows like `(m/n)^{1/2}` (the `√(m/n·log n)` of the
/// abstract), while `A_heavy`'s excess has exponent ≈ 0.
#[test]
fn excess_exponents_match_the_abstract() {
    let n = 1usize << 10;
    let ratios: Vec<u64> = vec![1 << 4, 1 << 6, 1 << 8, 1 << 10, 1 << 12];
    let xs: Vec<f64> = ratios.iter().map(|&r| r as f64).collect();

    let mut single_excess = Vec::new();
    let mut heavy_excess = Vec::new();
    for &r in &ratios {
        let m = n as u64 * r;
        // Average over a few seeds to tame the noise in the fitted exponent.
        let avg =
            |f: &dyn Fn(u64) -> i64| -> f64 { (0..3).map(|s| f(s) as f64).sum::<f64>() / 3.0 };
        single_excess.push(avg(&|s| {
            SingleChoiceAllocator::default().allocate(m, n, s).excess(m)
        }));
        heavy_excess.push(avg(&|s| {
            HeavyAllocator::default().allocate(m, n, s).excess(m)
        }));
    }

    let (alpha_single, r2_single) = power_law_exponent(&xs, &single_excess).unwrap();
    assert!(
        (0.3..=0.7).contains(&alpha_single),
        "single-choice excess exponent {alpha_single} (R²={r2_single}) is not ≈ 1/2"
    );
    assert!(
        r2_single > 0.9,
        "single-choice excess should follow a clean power law"
    );

    let (alpha_heavy, _) = power_law_exponent(&xs, &heavy_excess).unwrap();
    assert!(
        alpha_heavy.abs() < 0.15,
        "A_heavy excess exponent {alpha_heavy} should be ≈ 0 (m-independent)"
    );
}

/// Theorem 7: one threshold phase rejects `Θ(√(M·n)/t)` balls, so the rejected
/// count grows with exponent ≈ 1/2 in `M` (at fixed `n`, `t` varies only
/// logarithmically).
#[test]
fn rejection_exponent_is_one_half_in_m() {
    let n = 1usize << 10;
    let ratios: Vec<u64> = vec![1 << 6, 1 << 8, 1 << 10, 1 << 12];
    let xs: Vec<f64> = ratios.iter().map(|&r| (n as u64 * r) as f64).collect();
    let ys: Vec<f64> = ratios
        .iter()
        .map(|&r| {
            let m = n as u64 * r;
            let caps = uniform_capacities(m, n, 1);
            (0..3)
                .map(|s| run_rejection_phase(m, &caps, s).rejected as f64)
                .sum::<f64>()
                / 3.0
        })
        .collect();
    let (alpha, r2) = power_law_exponent(&xs, &ys).unwrap();
    assert!(
        (0.35..=0.65).contains(&alpha),
        "rejection exponent {alpha} (R²={r2}) is not ≈ 1/2"
    );
}

/// Claim 5: the probability that a bin receives `μ + 2√μ` requests is a
/// constant — it must not decay as the load ratio grows.
#[test]
fn claim5_overload_probability_is_flat_in_the_ratio() {
    let n = 1usize << 8;
    let ratios: Vec<u64> = vec![1 << 8, 1 << 10, 1 << 12];
    let xs: Vec<f64> = ratios.iter().map(|&r| r as f64).collect();
    let ys: Vec<f64> = ratios
        .iter()
        .map(|&r| measure_overload_probability(n as u64 * r, n, 30, 5).empirical_probability)
        .collect();
    assert!(ys.iter().all(|&p| p > 0.005), "probabilities {ys:?}");
    let (alpha, _) = power_law_exponent(&xs, &ys).unwrap();
    assert!(
        alpha.abs() < 0.25,
        "overload probability should be ratio-independent, exponent {alpha} ({ys:?})"
    );
}
