//! The concurrency contract of the `ConcurrentRouter` serving core:
//!
//! 1. **1-thread bit-identity** — with a single caller thread the concurrent
//!    pipeline is bit-identical to the classic `StreamAllocator`, for all six
//!    policies under uniform *and* tiered weights, on both the `route()` path
//!    and the `push`/`drain_ready`/`flush` path (loads, gap trajectory, shard
//!    stats and batch counts all agree) — including with releases
//!    interleaved, and under any `PBA_THREADS` worker count (drain
//!    parallelism only partitions index ranges). The batched `route_many`
//!    surface joins the same contract: a grouped call is bit-identical to a
//!    loop of `route` calls on *both* engines, for every group size.
//! 2. **k-thread conservation** — under concurrent route/release churn from
//!    many caller threads (one-at-a-time *and* grouped `route_many` calls,
//!    with membership staging interleaved), no ball is lost or duplicated:
//!    conservation holds at quiescence, open tickets equal routed −
//!    released, every live ticket releases exactly once, double releases are
//!    rejected, and boundaries fire once per `batch_size` routed balls.
//! 3. **Snapshot-epoch monotonicity** — epochs observed by concurrent
//!    readers never go backwards, equal the batch-boundary count at
//!    quiescence, and fire once per `batch_size` routed balls.
//! 4. **Gap trajectory bounds** — the measured online gap stays within the
//!    batched-model envelope (staleness of at most the in-flight balls, so
//!    O((k·b)/n + log n) for two-choice at k callers).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use parallel_balanced_allocations::model::rng::SeedSeq;
use parallel_balanced_allocations::model::weights::BinWeights;
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::Policy;

const POLICIES: [Policy; 6] = [
    Policy::OneChoice,
    Policy::TwoChoice,
    Policy::DChoice(3),
    Policy::Threshold { d: 2, slack: 1 },
    Policy::WeightedTwoChoice,
    Policy::CapacityThreshold { d: 2, slack: 2 },
];

/// A 4:2:1 tier mix over `n` bins (n must be a multiple of 8).
fn tier_mix(n: usize) -> BinWeights {
    BinWeights::power_of_two_tiers(&[(n / 8, 2), (n / 4, 1), (5 * n / 8, 0)])
}

/// Every test derives its randomness from a [`SeedSeq`] family: one root per
/// test, one stream tag per purpose, member index = thread/case — no two
/// call sites share a hardcoded `(seed, stream, index)` triple by accident.
fn keys(count: u64, seed: u64) -> Vec<u64> {
    let mut rng = SeedSeq::new(seed, 0xc0c0).rng(0);
    (0..count).map(|_| rng.next_u64()).collect()
}

/// 1-thread bit-identity, route path: all 6 policies × uniform/tiered
/// weights, with releases interleaved (every 5th routed ball retires an
/// earlier one, so threshold repricing sees departures too).
#[test]
fn one_thread_route_bit_identity_all_policies_and_weights() {
    let n = 64usize;
    for policy in POLICIES {
        for weights in [BinWeights::Uniform, tier_mix(n)] {
            let cfg = StreamConfig::new(n)
                .policy(policy)
                .batch_size(96)
                .seed(17)
                .weights(weights.clone());
            let concurrent = ConcurrentRouter::new(cfg.clone());
            let mut classic = StreamAllocator::new(cfg);
            let mut held_c = Vec::new();
            let mut held_s = Vec::new();
            for (i, key) in keys(96 * 12 + 31, 7).into_iter().enumerate() {
                let a = concurrent.route(key).expect("infallible");
                let b = classic.route(key).expect("infallible");
                assert_eq!(
                    a.bin,
                    b.bin,
                    "policy {} weights {} ball {i}",
                    policy.name(),
                    weights.name()
                );
                held_c.push(a.ticket);
                held_s.push(b.ticket);
                if i % 5 == 4 {
                    let at = i / 2;
                    concurrent.release(held_c[at]).expect("live ticket");
                    classic.release(held_s[at]).expect("live ticket");
                }
            }
            assert_eq!(concurrent.loads(), classic.loads(), "{}", policy.name());
            assert_eq!(concurrent.gap_trajectory(), classic.gap_trajectory());
            assert_eq!(concurrent.shard_stats(), classic.shard_stats());
            assert_eq!(concurrent.batches(), classic.snapshot().batches);
            assert_eq!(concurrent.flush(), classic.flush());
            assert_eq!(concurrent.gap_trajectory(), classic.gap_trajectory());
            assert!(concurrent.conserves_balls() && classic.conserves_balls());
        }
    }
}

/// Batched bit-identity: `route_many` groups of every shape — singletons,
/// misaligned odd sizes, bigger than a whole batch — match a loop of
/// `route` calls ball for ball on both engines, for all 6 policies ×
/// uniform/tiered weights × drain threads {1, 4}, with releases interleaved
/// between groups. Placements, ticket ids, loads, gap trajectories, shard
/// stats and batch counts must all agree exactly.
#[test]
fn route_many_is_bit_identical_to_looped_route_on_both_engines() {
    let n = 64usize;
    let sizes = [1usize, 3, 8, 17, 33, 2];
    for policy in POLICIES {
        for weights in [BinWeights::Uniform, tier_mix(n)] {
            for threads in [1usize, 4] {
                let cfg = StreamConfig::new(n)
                    .policy(policy)
                    .batch_size(32)
                    .seed(41)
                    .num_threads(threads)
                    .weights(weights.clone());
                let mut looped = StreamAllocator::new(cfg.clone());
                let mut grouped = StreamAllocator::new(cfg.clone());
                let concurrent = ConcurrentRouter::new(cfg);
                let keys = keys(32 * 10 + 13, 19);
                let mut held_l = Vec::new();
                let mut held_g = Vec::new();
                let mut held_c = Vec::new();
                let mut cursor = 0usize;
                let mut wave = 0usize;
                while cursor < keys.len() {
                    let take = sizes[wave % sizes.len()].min(keys.len() - cursor);
                    let group = &keys[cursor..cursor + take];
                    for &key in group {
                        held_l.push(looped.route(key).expect("infallible"));
                    }
                    let g = grouped.route_many(group).expect("infallible");
                    let c = concurrent.route_many(group).expect("infallible");
                    assert_eq!(g.len(), take);
                    assert_eq!(c.len(), take);
                    for i in 0..take {
                        let l = &held_l[cursor + i];
                        assert_eq!(
                            g[i].bin,
                            l.bin,
                            "stream group diverged: {} {} threads={threads} ball {}",
                            policy.name(),
                            weights.name(),
                            cursor + i
                        );
                        assert_eq!(
                            c[i].bin,
                            l.bin,
                            "concurrent group diverged: {} {} threads={threads} ball {}",
                            policy.name(),
                            weights.name(),
                            cursor + i
                        );
                        assert_eq!(g[i].ticket.id(), l.ticket.id());
                        assert_eq!(c[i].ticket.id(), l.ticket.id());
                    }
                    held_g.extend(g);
                    held_c.extend(c);
                    // Retire an earlier ball every few groups so the grouped
                    // engines see departures between calls too.
                    if wave % 4 == 3 {
                        let at = cursor / 2;
                        looped.release(held_l[at].ticket).expect("live ticket");
                        grouped.release(held_g[at].ticket).expect("live ticket");
                        concurrent.release(held_c[at].ticket).expect("live ticket");
                    }
                    cursor += take;
                    wave += 1;
                }
                assert_eq!(grouped.loads(), looped.loads(), "{}", policy.name());
                assert_eq!(concurrent.loads(), looped.loads(), "{}", policy.name());
                assert_eq!(grouped.gap_trajectory(), looped.gap_trajectory());
                assert_eq!(concurrent.gap_trajectory(), looped.gap_trajectory());
                assert_eq!(grouped.shard_stats(), looped.shard_stats());
                assert_eq!(concurrent.shard_stats(), looped.shard_stats());
                assert_eq!(concurrent.batches(), looped.snapshot().batches);
                let flushed = looped.flush();
                assert_eq!(grouped.flush(), flushed);
                assert_eq!(concurrent.flush(), flushed);
                assert!(concurrent.conserves_balls());
                assert!(grouped.conserves_balls() && looped.conserves_balls());
            }
        }
    }
}

/// 1-thread bit-identity, push path: `push` + `drain_ready` + `flush`
/// through the MPMC ingress matches the buffered engine, with route traffic
/// interleaved between drains (mixed-surface usage).
#[test]
fn one_thread_push_drain_bit_identity_with_interleaved_routes() {
    let n = 48usize;
    for policy in POLICIES {
        let cfg = StreamConfig::new(n)
            .policy(policy)
            .batch_size(64)
            .seed(23)
            .shards(4)
            .weights(tier_mix(n));
        let concurrent = ConcurrentRouter::new(cfg.clone());
        let mut classic = StreamAllocator::new(cfg);
        let mut rng = SeedSeq::new(1, 0xab).rng(0);
        for wave in 0..6u64 {
            for _ in 0..150 {
                let key = rng.next_u64();
                concurrent.push(key);
                classic.push(key);
            }
            assert_eq!(concurrent.drain_ready(), classic.drain_ready());
            // Interleaved handle traffic (an open routed batch must not
            // disturb the push-path boundaries).
            for _ in 0..=(wave % 3) {
                let key = rng.next_u64();
                assert_eq!(
                    concurrent.route(key).unwrap().bin,
                    classic.route(key).unwrap().bin
                );
            }
            assert_eq!(concurrent.loads(), classic.loads(), "wave {wave}");
        }
        assert_eq!(concurrent.flush(), classic.flush());
        assert_eq!(concurrent.loads(), classic.loads(), "{}", policy.name());
        assert_eq!(concurrent.gap_trajectory(), classic.gap_trajectory());
        assert_eq!(concurrent.shard_stats(), classic.shard_stats());
        assert_eq!(concurrent.pending(), 0);
        assert!(concurrent.conserves_balls());
    }
}

/// k-thread conservation and ticket-ledger consistency under concurrent
/// route/release churn: no lost or duplicated tickets for any interleaving.
#[test]
fn k_thread_churn_conserves_and_keeps_ledger_consistent() {
    let n = 64usize;
    let callers = 8u64;
    let per_caller = 3_000u64;
    let seeds = SeedSeq::new(3, 0xc4a7);
    for weights in [BinWeights::Uniform, tier_mix(n)] {
        let router = ConcurrentRouter::new(
            StreamConfig::new(n)
                .policy(Policy::TwoChoice)
                .batch_size(128)
                .seed(seeds.root())
                .weights(weights),
        );
        let kept: Vec<Ticket> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..callers)
                .map(|t| {
                    let router = router.clone();
                    scope.spawn(move || {
                        let mut rng = seeds.rng(t);
                        let mut kept = Vec::new();
                        for i in 0..per_caller {
                            let placement = router.route(rng.next_u64()).unwrap();
                            if i % 3 == 0 {
                                kept.push(placement.ticket);
                            } else {
                                router.release(placement.ticket).expect("fresh ticket");
                            }
                        }
                        kept
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("caller thread"))
                .collect()
        });
        // Quiescent: every counter must reconcile exactly.
        assert!(router.conserves_balls());
        let stats = router.stats();
        assert_eq!(stats.routed, callers * per_caller);
        assert_eq!(stats.released, callers * per_caller - kept.len() as u64);
        assert_eq!(router.resident(), kept.len() as u64);
        assert_eq!(router.resident_tickets(), kept.len());
        let per_bin: usize = (0..n).map(|b| router.tickets_in(b)).sum();
        assert_eq!(per_bin, kept.len(), "ledger shards agree with total");
        for ticket in kept {
            router.release(ticket).expect("kept tickets release once");
            assert!(router.release(ticket).is_err(), "double release rejected");
        }
        assert_eq!(router.loads(), vec![0; n]);
        assert!(router.conserves_balls());
    }
}

/// Snapshot epochs observed by concurrent readers are monotone, and at
/// quiescence equal the boundary count (one per `batch_size` routed balls).
#[test]
fn snapshot_epochs_are_monotone_under_concurrent_routing() {
    let n = 32usize;
    let batch = 64usize;
    let callers = 4u64;
    let per_caller = 4_000u64;
    let router = ConcurrentRouter::new(StreamConfig::new(n).batch_size(batch).seed(11));
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let router = router.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut observed = 0u64;
            while !stop.load(Ordering::Acquire) {
                let epoch = router.snapshot_epoch();
                assert!(epoch >= last, "epoch went backwards: {last} -> {epoch}");
                last = epoch;
                observed += 1;
                // The published snapshot itself must be coherent: it is an
                // Arc to an immutable boundary vector, so its total can
                // never exceed what has been placed so far.
                let stale: u64 = router.stale_loads().iter().map(|&l| l as u64).sum();
                assert!(stale <= router.stats().routed);
            }
            (last, observed)
        })
    };
    std::thread::scope(|scope| {
        for t in 0..callers {
            let router = router.clone();
            scope.spawn(move || {
                for i in 0..per_caller {
                    router.route(t * 1_000_000 + i).unwrap();
                }
            });
        }
    });
    stop.store(true, Ordering::Release);
    let (last_seen, observed) = watcher.join().expect("watcher");
    assert!(observed > 0);
    let expected = callers * per_caller / batch as u64;
    assert_eq!(router.batches(), expected);
    assert_eq!(router.snapshot_epoch(), expected);
    assert!(last_seen <= expected);
    assert_eq!(router.gap_trajectory().len() as u64, expected);
}

/// The measured gap trajectory stays inside the batched-model envelope at
/// k callers: staleness is at most the batch plus in-flight balls, so the
/// two-choice gap is O((k·b)/n + log n) — asserted with a generous constant
/// (the point is "bounded, not growing with total arrivals").
#[test]
fn gap_trajectory_bounds_hold_under_concurrency() {
    let n = 64usize;
    let batch = 128usize;
    let callers = 4u64;
    let per_caller = 16_000u64;
    let seeds = SeedSeq::new(29, 0x9a9);
    let router = ConcurrentRouter::new(StreamConfig::new(n).batch_size(batch).seed(seeds.root()));
    std::thread::scope(|scope| {
        for t in 0..callers {
            let router = router.clone();
            scope.spawn(move || {
                let mut rng = seeds.rng(t);
                for _ in 0..per_caller {
                    router.route(rng.next_u64()).unwrap();
                }
            });
        }
    });
    let envelope = 4.0 * (callers as usize * batch) as f64 / n as f64 + 4.0 * (n as f64).log2();
    let trajectory = router.gap_trajectory();
    assert!(!trajectory.is_empty());
    let worst = trajectory.iter().copied().fold(0.0f64, f64::max);
    assert!(
        worst <= envelope,
        "gap {worst:.1} escaped the staleness envelope {envelope:.1}"
    );
    // Bounded over time: the tail of the run is no worse than the envelope
    // either (no drift with total arrivals).
    let final_gap = *trajectory.last().unwrap();
    assert!(final_gap <= envelope);
    assert!(router.conserves_balls());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomised 1-thread bit-identity: arbitrary bins/batch/seed and mixed
    /// route + push/drain traffic agree with the classic engine exactly.
    #[test]
    fn one_thread_mixed_traffic_matches_classic(
        n_exp in 3u32..7,
        batch in 1usize..120,
        waves in 1usize..5,
        per_wave in 1u64..250,
        routes_per_wave in 0u64..40,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << n_exp;
        let cfg = StreamConfig::new(n).batch_size(batch).seed(seed);
        let concurrent = ConcurrentRouter::new(cfg.clone());
        let mut classic = StreamAllocator::new(cfg);
        let mut rng = SeedSeq::new(seed, 0x777).rng(0);
        for _ in 0..waves {
            for _ in 0..per_wave {
                let key = rng.next_u64();
                concurrent.push(key);
                classic.push(key);
            }
            prop_assert_eq!(concurrent.drain_ready(), classic.drain_ready());
            for _ in 0..routes_per_wave {
                let key = rng.next_u64();
                let a = concurrent.route(key).unwrap();
                let b = classic.route(key).unwrap();
                prop_assert_eq!(a.bin, b.bin);
            }
            prop_assert_eq!(concurrent.loads(), classic.loads());
        }
        prop_assert_eq!(concurrent.flush(), classic.flush());
        prop_assert_eq!(concurrent.loads(), classic.loads());
        prop_assert_eq!(concurrent.gap_trajectory(), classic.gap_trajectory());
        prop_assert_eq!(concurrent.batches(), classic.snapshot().batches);
        prop_assert!(concurrent.conserves_balls());
    }

    /// k callers interleave grouped `route_many` calls, releases and
    /// membership staging under arbitrary shapes; for every schedule the
    /// ledger reconciles exactly at quiescence and boundaries fire once per
    /// `batch_size` routed balls (membership staging never adds or swallows
    /// a boundary).
    #[test]
    fn k_caller_route_many_churn_conserves_and_fires_boundaries(
        callers in 2u64..5,
        waves in 4usize..10,
        group_max in 1usize..48,
        batch in 8usize..96,
        seed in 0u64..1_000,
    ) {
        let n = 32usize;
        let router = ConcurrentRouter::new(
            StreamConfig::new(n)
                .policy(Policy::TwoChoice)
                .batch_size(batch)
                .seed(seed)
                .reserve_bins(4),
        );
        let seeds = SeedSeq::new(seed, 0xface);
        let kept: Vec<Ticket> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..callers)
                .map(|t| {
                    let router = router.clone();
                    let seeds = &seeds;
                    scope.spawn(move || {
                        let mut rng = seeds.rng(t);
                        let mut kept = Vec::new();
                        for wave in 0..waves {
                            let size = (rng.next_u64() as usize % group_max) + 1;
                            let group: Vec<u64> =
                                (0..size).map(|_| rng.next_u64()).collect();
                            let placements =
                                router.route_many(&group).expect("infallible");
                            assert_eq!(placements.len(), size);
                            for (i, placement) in placements.into_iter().enumerate() {
                                if (wave + i) % 3 == 0 {
                                    kept.push(placement.ticket);
                                } else {
                                    router.release(placement.ticket).expect("fresh ticket");
                                }
                            }
                            // Interleave membership churn: drains stay inside
                            // the low half of the slots so active bins never
                            // run out; adds beyond the reserve are rejected
                            // (and counted) at the boundary, not dropped.
                            if wave % 3 == t as usize % 3 {
                                let plan = if wave % 2 == 0 {
                                    MembershipPlan::new()
                                        .drain((rng.next_u64() % (n as u64 / 2)) as u32)
                                } else {
                                    MembershipPlan::new().add(1.0)
                                };
                                router.stage_membership(plan);
                            }
                        }
                        kept
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("caller thread"))
                .collect()
        });
        // Quiescent, pre-flush: one boundary per `batch_size` routed balls.
        let stats = router.stats();
        prop_assert_eq!(stats.batches, stats.routed / batch as u64);
        prop_assert!(router.conserves_balls());
        prop_assert_eq!(router.resident_tickets() as u64, stats.routed - stats.released);
        prop_assert_eq!(router.resident_tickets(), kept.len());
        let per_bin: usize = (0..router.capacity()).map(|b| router.tickets_in(b)).sum();
        prop_assert_eq!(per_bin, kept.len(), "ledger shards agree with total");
        for ticket in kept {
            router.release(ticket).expect("kept tickets release once");
            prop_assert!(router.release(ticket).is_err(), "double release rejected");
        }
        prop_assert!(router.conserves_balls());
    }
}
