//! Cross-crate integration tests for the remaining theorems: the asymmetric
//! algorithm (Theorem 3), the `A_light` substrate (Theorem 5), the lower bound
//! (Theorems 2/7), and the baseline ordering the introduction describes.

use parallel_balanced_allocations::algorithms::{
    AsymmetricAllocator, LightAllocator, NaiveThresholdAllocator, TrivialAllocator,
};
use parallel_balanced_allocations::baselines::{
    standard_baselines, GreedyDAllocator, SingleChoiceAllocator,
};
use parallel_balanced_allocations::lowerbound::rejection::{
    run_rejection_phase, uniform_capacities,
};
use parallel_balanced_allocations::lowerbound::{
    lower_bound_round_prediction, measure_rounds_to_finish,
};
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stats::log_star;

#[test]
fn theorem3_asymmetric_constant_rounds_and_load() {
    let n = 1usize << 10;
    for &ratio in &[1u64 << 6, 1 << 10, 1 << 12] {
        let m = n as u64 * ratio;
        let out = AsymmetricAllocator::default().allocate(m, n, 2);
        assert!(out.is_complete(m));
        assert!(out.rounds <= 9, "ratio {ratio}: {} rounds", out.rounds);
        assert!(
            out.excess(m) <= 16,
            "ratio {ratio}: excess {}",
            out.excess(m)
        );
        let bin_bound = 1.35 * ratio as f64 + 60.0 * (n as f64).ln();
        assert!((out.census.max_bin_received() as f64) <= bin_bound);
    }
}

#[test]
fn theorem5_light_substrate_guarantees() {
    for &n in &[1usize << 10, 1 << 14] {
        let out = LightAllocator::default().allocate(n as u64, n, 4);
        assert!(out.is_complete(n as u64));
        assert!(out.max_load() <= 2);
        assert!(out.rounds <= log_star(n as f64) as usize + 6);
        assert!(out.messages.total() <= 16 * n as u64);
    }
}

#[test]
fn theorem7_single_phase_rejections_scale() {
    let n = 1usize << 10;
    let m = (n as u64) << 10;
    let census = run_rejection_phase(m, &uniform_capacities(m, n, 1), 0);
    assert!(
        census.rejected > 0,
        "a capacity-M+n phase must reject balls"
    );
    // Within a wide constant band of the √(Mn)/t prediction.
    let c = census.constant_estimate();
    assert!(c > 0.05 && c < 50.0, "constant {c}");
}

#[test]
fn theorem2_round_ordering_naive_vs_heavy_vs_prediction() {
    let n = 1usize << 9;
    let m = (n as u64) << 8;
    let seeds = [0u64, 1];
    let (naive_rounds, _) =
        measure_rounds_to_finish(&NaiveThresholdAllocator::new(1, 1), m, n, &seeds);
    let (heavy_rounds, _) = measure_rounds_to_finish(&HeavyAllocator::default(), m, n, &seeds);
    let prediction = lower_bound_round_prediction(m, n, 4.0) as f64;
    assert!(
        heavy_rounds + 1.0 >= prediction / 2.0,
        "heavy {heavy_rounds} vs prediction {prediction}"
    );
    assert!(
        naive_rounds >= 2.0 * heavy_rounds,
        "naive {naive_rounds} vs heavy {heavy_rounds}"
    );
}

#[test]
fn introduction_ordering_of_excesses() {
    // single-choice ≫ greedy[2] ≥ heavy ≈ O(1); trivial is perfectly balanced.
    let n = 1usize << 10;
    let m = (n as u64) << 10;
    let seed = 13u64;
    let single = SingleChoiceAllocator::default()
        .allocate(m, n, seed)
        .excess(m);
    let greedy = GreedyDAllocator::new(2).allocate(m, n, seed).excess(m);
    let heavy = HeavyAllocator::default().allocate(m, n, seed).excess(m);
    let trivial = TrivialAllocator.allocate(m, n, seed).excess(m);
    assert!(
        single > 4 * greedy.max(1),
        "single {single} vs greedy {greedy}"
    );
    assert!(greedy <= 6);
    assert!(heavy <= 8);
    assert_eq!(trivial, 0);
}

#[test]
fn every_standard_baseline_completes_and_conserves() {
    let m = 50_000u64;
    let n = 250usize;
    for alloc in standard_baselines() {
        for seed in 0..2u64 {
            let out = alloc.allocate(m, n, seed);
            assert!(out.is_complete(m), "{}", alloc.name());
            assert!(out.conserves_balls(m), "{}", alloc.name());
            assert!(out.max_load() >= m.div_ceil(n as u64));
        }
    }
}
