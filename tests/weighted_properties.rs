//! Property tests for weighted multi-backend routing:
//!
//! 1. **Strict uniform no-op** — a stream configured with uniform weights
//!    (including explicit constant vectors and single-tier layouts) is
//!    bit-identical to the unweighted engine, for every policy.
//! 2. **Weighted drain-path equivalence** — the sharded parallel drain of a
//!    weighted stream is bit-identical to the sequential drain (placements
//!    stay pure functions of the stale snapshot even with alias-table
//!    candidate sampling and overflow retries).
//! 3. **Normalized-load dominance** — on skewed capacity tiers the weighted
//!    policies keep the max normalized load below the weight-oblivious
//!    baseline.
//! 4. **Weighted asymmetric reduction** — unit capacities reproduce the
//!    unweighted asymmetric algorithm exactly; tiered capacities keep its
//!    constant-round, `O(1)`-normalized-excess guarantees.

use proptest::prelude::*;

use parallel_balanced_allocations::algorithms::{
    AsymmetricAllocator, AsymmetricConfig, WeightedAsymmetricAllocator,
};
use parallel_balanced_allocations::model::rng::SplitMix64;
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::Policy;

fn push_keys(stream: &mut StreamAllocator, count: u64, key_seed: u64) {
    let mut rng = SplitMix64::for_stream(key_seed, 0x3e1, 0);
    for _ in 0..count {
        stream.push(rng.next_u64());
    }
}

/// All policies, including the weight-aware ones.
const POLICIES: [Policy; 6] = [
    Policy::OneChoice,
    Policy::TwoChoice,
    Policy::DChoice(3),
    Policy::Threshold { d: 2, slack: 1 },
    Policy::WeightedTwoChoice,
    Policy::CapacityThreshold { d: 2, slack: 2 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Uniform weights — in any spelling — are a strict no-op: bit-identical
    /// loads and gap trajectories against the unweighted engine.
    #[test]
    fn uniform_weights_are_bit_identical_to_unweighted(
        n_exp in 3u32..8,
        batch in 1usize..200,
        balls in 1u64..3_000,
        seed in 0u64..1_000,
        policy_idx in 0usize..POLICIES.len(),
        constant in 1u32..100,
        spelling in 0usize..3,
    ) {
        let n = 1usize << n_exp;
        let policy = POLICIES[policy_idx];
        let weights = match spelling {
            0 => BinWeights::Uniform,
            1 => BinWeights::explicit(vec![constant as f64 / 4.0; n]),
            _ => BinWeights::power_of_two_tiers(&[(n / 2, 3), (n / 2, 3)]),
        };
        let cfg = StreamConfig::new(n).policy(policy).batch_size(batch).seed(seed);
        let mut plain = StreamAllocator::new(cfg.clone());
        let mut weighted = StreamAllocator::new(cfg.weights(weights));
        prop_assert!(weighted.weights().is_none(), "uniform must resolve to None");
        push_keys(&mut plain, balls, seed);
        push_keys(&mut weighted, balls, seed);
        plain.flush();
        weighted.flush();
        prop_assert_eq!(plain.loads(), weighted.loads());
        prop_assert_eq!(plain.gap_trajectory(), weighted.gap_trajectory());
    }

    /// The sharded weighted drain is bit-identical to the sequential one.
    #[test]
    fn weighted_sharded_and_sequential_drains_agree(
        n_exp in 4u32..8,
        shards in 2usize..9,
        batch in 1usize..257,
        balls in 1u64..4_000,
        seed in 0u64..1_000,
        policy_idx in 0usize..POLICIES.len(),
        big_tier_exp in 1u32..4,
    ) {
        let n = 1usize << n_exp;
        let policy = POLICIES[policy_idx];
        let weights = BinWeights::power_of_two_tiers(&[(n / 4, big_tier_exp), (3 * n / 4, 0)]);
        let cfg = StreamConfig::new(n)
            .policy(policy)
            .batch_size(batch)
            .seed(seed)
            .weights(weights);
        let mut parallel = StreamAllocator::new(cfg.clone().shards(shards));
        let mut sequential = StreamAllocator::new(cfg.sequential());
        push_keys(&mut parallel, balls, seed);
        push_keys(&mut sequential, balls, seed);
        parallel.flush();
        sequential.flush();
        prop_assert_eq!(parallel.loads(), sequential.loads());
        prop_assert_eq!(parallel.gap_trajectory(), sequential.gap_trajectory());
        prop_assert!(parallel.conserves_balls());
        prop_assert_eq!(parallel.resident(), balls);
    }

    /// Unit capacities make the weighted asymmetric allocator reproduce the
    /// unweighted one bit for bit (the algorithms-level no-op invariant).
    #[test]
    fn unit_capacity_asymmetric_is_bit_identical(
        n_exp in 6u32..9,
        ratio_exp in 4u32..8,
        seed in 0u64..100,
    ) {
        let n = 1usize << n_exp;
        let m = (n as u64) << ratio_exp;
        let weighted = WeightedAsymmetricAllocator::new(vec![1; n], AsymmetricConfig::default());
        let w = weighted.allocate(m, n, seed);
        let u = AsymmetricAllocator::default().allocate(m, n, seed);
        prop_assert_eq!(w.loads, u.loads);
        prop_assert_eq!(w.rounds, u.rounds);
        prop_assert_eq!(w.census.per_bin_received, u.census.per_bin_received);
    }
}

/// The acceptance scenario: on a 4:2:1 capacity tier mix, weighted
/// two-choice achieves a lower max normalized load than weight-oblivious
/// two-choice on the same stream, and the capacity threshold stays near the
/// fair level too.
#[test]
fn weighted_two_choice_beats_oblivious_on_4_2_1_tiers() {
    let n = 128usize;
    let weights = BinWeights::power_of_two_tiers(&[(16, 2), (32, 1), (80, 0)]);
    let total_weight: f64 = weights.to_vec(n).iter().sum();
    let m = 64 * n as u64;
    let fair = m as f64 / total_weight;
    let base = StreamConfig::new(n).batch_size(n).seed(1).weights(weights);
    let run = |policy: Policy| {
        let mut stream = StreamAllocator::new(base.clone().policy(policy));
        push_keys(&mut stream, m, 5);
        stream.flush();
        stream.max_normalized_load()
    };
    let oblivious = run(Policy::TwoChoice);
    let weighted = run(Policy::WeightedTwoChoice);
    let capacity = run(Policy::CapacityThreshold { d: 2, slack: 2 });
    assert!(
        weighted < oblivious,
        "weighted {weighted:.1} must beat oblivious {oblivious:.1}"
    );
    assert!(
        weighted < 1.35 * fair,
        "weighted max normalized load {weighted:.1} should stay near fair {fair:.1}"
    );
    assert!(
        capacity < oblivious,
        "capacity threshold {capacity:.1} must beat oblivious {oblivious:.1}"
    );
}

/// Tiered weighted asymmetric allocation keeps constant rounds and O(1)
/// normalized excess (the weighted Theorem 3 analogue).
#[test]
fn weighted_asymmetric_keeps_constant_rounds_on_tiers() {
    let mut caps = vec![4u32; 32];
    caps.extend(vec![2u32; 64]);
    caps.extend(vec![1u32; 160]);
    let alloc = WeightedAsymmetricAllocator::new(caps, AsymmetricConfig::default());
    for seed in 0..3u64 {
        let m = 1u64 << 19;
        let (out, trace) = alloc.allocate_traced(m, seed);
        assert!(out.is_complete(m));
        assert!(out.rounds <= 9, "{} rounds", out.rounds);
        assert_eq!(trace.virtual_bins, 32 * 4 + 64 * 2 + 160);
        let excess = alloc.normalized_excess(&out, m);
        assert!(excess <= 16.0, "normalized excess {excess:.1}");
    }
}
