//! Property tests for the streaming engine (`pba-stream`):
//!
//! 1. **Conservation** — across arbitrary push/drain/release cycles (churn
//!    retires residents through ticketed `route`/`release`),
//!    `arrived == placed + pending` and `placed − departed == Σ loads`.
//! 2. **Drain-path equivalence** — the sequential and the sharded parallel
//!    drain produce bit-identical loads and gap trajectories for every policy
//!    and seed (placements are pure functions of the stale snapshot).
//! 3. **Static-workload fidelity** — on an equivalent static workload the
//!    streaming engine reproduces the behaviour of the one-shot machinery:
//!    one-choice matches the count engine's single-round multinomial gap, and
//!    batched two-choice matches the one-shot batched-two-choice baseline.

use proptest::prelude::*;

use parallel_balanced_allocations::baselines::BatchedTwoChoiceAllocator;
use parallel_balanced_allocations::model::engine::run_count_engine;
use parallel_balanced_allocations::model::protocol::FixedThresholdProtocol;
use parallel_balanced_allocations::model::rng::SplitMix64;
use parallel_balanced_allocations::model::Allocator;
use parallel_balanced_allocations::stream::{Policy, StreamAllocator, StreamConfig};

/// Deterministic uniform key stream for the tests.
fn push_keys(stream: &mut StreamAllocator, count: u64, key_seed: u64) {
    let mut rng = SplitMix64::for_stream(key_seed, 0x7e57, 0);
    for _ in 0..count {
        stream.push(rng.next_u64());
    }
}

fn gap_of(loads: &[u32]) -> f64 {
    let total: u64 = loads.iter().map(|&l| l as u64).sum();
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    max - total as f64 / loads.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation across interleaved push / drain / depart cycles.
    #[test]
    fn conservation_across_push_drain_depart_cycles(
        n_exp in 3u32..8,
        batch in 1usize..300,
        cycles in 1usize..6,
        pushes in 1u64..500,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << n_exp;
        let mut stream = StreamAllocator::new(
            StreamConfig::new(n).batch_size(batch).seed(seed),
        );
        let mut churn_rng = SplitMix64::for_stream(seed, 0xdead, 1);
        let mut routed: u64 = 0;
        let mut departed: u64 = 0;
        for cycle in 0..cycles {
            push_keys(&mut stream, pushes, seed ^ cycle as u64);
            stream.drain_ready();
            prop_assert!(stream.conserves_balls(), "after drain in cycle {}", cycle);
            // Retire residents through ticketed churn: route a few balls
            // (the only ones that carry handles — pushed balls stay
            // anonymous) and release a ticket sampled from a random bin.
            for _ in 0..(pushes / 4) {
                stream.route(churn_rng.next_u64()).unwrap();
                routed += 1;
                let bin = churn_rng.gen_index(n);
                if let Some(ticket) = stream.ticket_in(bin) {
                    stream.release(ticket).unwrap();
                    departed += 1;
                }
            }
            prop_assert!(stream.conserves_balls(), "after churn in cycle {}", cycle);
        }
        stream.flush();
        prop_assert!(stream.conserves_balls());
        prop_assert_eq!(stream.pending(), 0);
        let placed: u64 = cycles as u64 * pushes + routed;
        let snapshot = stream.snapshot();
        prop_assert_eq!(snapshot.arrived, placed);
        prop_assert_eq!(snapshot.placed, placed);
        prop_assert_eq!(snapshot.departed, departed);
        prop_assert_eq!(stream.resident_tickets() as u64, routed - departed);
        prop_assert_eq!(
            snapshot.loads.iter().map(|&l| l as u64).sum::<u64>(),
            placed - snapshot.departed
        );
    }

    /// The sequential and sharded parallel drain paths are bit-identical.
    #[test]
    fn sequential_and_sharded_drains_agree(
        n_exp in 3u32..8,
        shards in 2usize..9,
        batch in 1usize..257,
        balls in 1u64..4_000,
        seed in 0u64..1_000,
        policy_idx in 0usize..4,
    ) {
        let n = 1usize << n_exp;
        let policy = [
            Policy::OneChoice,
            Policy::TwoChoice,
            Policy::DChoice(3),
            Policy::Threshold { d: 2, slack: 1 },
        ][policy_idx];
        let cfg = StreamConfig::new(n).policy(policy).batch_size(batch).seed(seed);
        let mut parallel = StreamAllocator::new(cfg.clone().shards(shards));
        let mut sequential = StreamAllocator::new(cfg.sequential());
        push_keys(&mut parallel, balls, seed);
        push_keys(&mut sequential, balls, seed);
        parallel.flush();
        sequential.flush();
        prop_assert_eq!(parallel.loads(), sequential.loads());
        prop_assert_eq!(parallel.gap_trajectory(), sequential.gap_trajectory());
        prop_assert_eq!(parallel.resident(), balls);
    }

    /// Each hot key only ever reaches its fixed candidate set.
    #[test]
    fn keyed_placements_are_consistent(
        n_exp in 4u32..9,
        key in 0u64..1_000_000,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << n_exp;
        let mut stream = StreamAllocator::new(
            StreamConfig::new(n).policy(Policy::TwoChoice).batch_size(32).seed(seed),
        );
        for _ in 0..256 {
            stream.push(key);
        }
        stream.flush();
        let touched = stream.loads().iter().filter(|&&l| l > 0).count();
        prop_assert!(touched <= 2, "hot key touched {} bins", touched);
    }
}

/// Deterministic large-batch equivalence: batches of 8192 cross the engine's
/// parallel-apply cutoff, so the sharded grouping + stats-fold path runs (the
/// proptest ranges above stay below the cutoff for speed).
#[test]
fn sharded_apply_path_matches_sequential_on_large_batches() {
    for policy in [Policy::TwoChoice, Policy::Threshold { d: 2, slack: 2 }] {
        let cfg = StreamConfig::new(128)
            .policy(policy)
            .batch_size(8192)
            .seed(41);
        let mut parallel = StreamAllocator::new(cfg.clone().shards(8));
        let mut sequential = StreamAllocator::new(cfg.sequential());
        push_keys(&mut parallel, 30_000, 7);
        push_keys(&mut sequential, 30_000, 7);
        parallel.flush();
        sequential.flush();
        assert_eq!(parallel.loads(), sequential.loads());
        assert_eq!(parallel.gap_trajectory(), sequential.gap_trajectory());
    }
}

/// The stream's one-choice policy on a static workload matches the count
/// engine's single-round multinomial process (the same `(m, n)` one-shot
/// instance) in gap, up to seed noise.
#[test]
fn one_choice_gap_matches_count_engine_on_static_workload() {
    let n = 256usize;
    let m = 1u64 << 16;
    let seeds: u64 = 5;
    let mut stream_mean = 0.0;
    let mut engine_mean = 0.0;
    for seed in 0..seeds {
        let mut stream = StreamAllocator::new(
            StreamConfig::new(n)
                .policy(Policy::OneChoice)
                .batch_size(n)
                .seed(seed),
        );
        push_keys(&mut stream, m, seed);
        stream.flush();
        stream_mean += gap_of(&stream.loads()) / seeds as f64;

        // One round of an uncapped fixed-threshold protocol = single choice.
        let mut protocol = FixedThresholdProtocol::new(u32::MAX, 1);
        protocol.max_rounds = 1;
        let result = run_count_engine(&protocol, m, n, seed);
        assert_eq!(result.remaining, 0);
        engine_mean += gap_of(&result.loads) / seeds as f64;
    }
    let ratio = stream_mean / engine_mean;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "stream one-choice gap {stream_mean:.1} vs count engine {engine_mean:.1} (ratio {ratio:.2})"
    );
}

/// The stream's two-choice policy with batch size `b` matches the one-shot
/// batched-two-choice baseline with the same batch size, up to seed noise.
#[test]
fn two_choice_gap_matches_batched_baseline_on_static_workload() {
    let n = 256usize;
    let m = 1u64 << 16;
    let batch = n;
    let seeds: u64 = 5;
    let mut stream_mean = 0.0;
    let mut baseline_mean = 0.0;
    for seed in 0..seeds {
        let mut stream = StreamAllocator::new(
            StreamConfig::new(n)
                .policy(Policy::TwoChoice)
                .batch_size(batch)
                .seed(seed),
        );
        push_keys(&mut stream, m, seed);
        stream.flush();
        stream_mean += gap_of(&stream.loads()) / seeds as f64;

        let out = BatchedTwoChoiceAllocator::with_batch_size(batch).allocate(m, n, seed);
        assert!(out.is_complete(m));
        baseline_mean += gap_of(&out.loads) / seeds as f64;
    }
    let diff = (stream_mean - baseline_mean).abs();
    assert!(
        diff <= 3.0,
        "stream two-choice gap {stream_mean:.2} vs batched baseline {baseline_mean:.2}"
    );
}
