//! Cross-crate integration tests for Theorem 1 / Theorem 6: the symmetric
//! threshold algorithm `A_heavy` achieves `m/n + O(1)` load within
//! `O(log log(m/n) + log* n)` rounds using `O(m)` messages, across the parameter
//! grid the experiments use.

use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stats::{log_log2, log_star};

#[test]
fn theorem1_load_rounds_and_messages_across_grid() {
    for &(n, ratio) in &[
        (1usize << 8, 1u64 << 4),
        (1 << 8, 1 << 10),
        (1 << 10, 1 << 8),
        (1 << 12, 1 << 6),
    ] {
        let m = n as u64 * ratio;
        for seed in 0..2u64 {
            let out = HeavyAllocator::default().allocate(m, n, seed);
            assert!(out.is_complete(m), "n={n} ratio={ratio} seed={seed}");
            assert!(
                out.excess(m) <= 8,
                "n={n} ratio={ratio} seed={seed}: excess {}",
                out.excess(m)
            );
            let round_budget =
                log_log2(ratio as f64).ceil() as usize + log_star(n as f64) as usize + 8;
            assert!(
                out.rounds <= round_budget,
                "n={n} ratio={ratio} seed={seed}: {} rounds > {round_budget}",
                out.rounds
            );
            assert!(
                out.messages.requests <= 3 * m,
                "n={n} ratio={ratio}: {} requests",
                out.messages.requests
            );
        }
    }
}

#[test]
fn rounds_grow_double_logarithmically_with_ratio() {
    // The defining scaling of Theorem 1: squaring m/n adds only O(1) rounds.
    let n = 1usize << 8;
    let rounds_at = |ratio: u64| {
        let m = n as u64 * ratio;
        HeavyAllocator::default().allocate(m, n, 3).rounds
    };
    let r_small = rounds_at(1 << 6);
    let r_medium = rounds_at(1 << 12);
    let r_large = rounds_at(1 << 15);
    // Total rounds include the (noisy, ±2) A_light clean-up phase, so only the
    // coarse double-logarithmic scaling is asserted: hugely larger ratios may add
    // only a handful of rounds.
    assert!(
        r_medium.saturating_sub(r_small) <= 4,
        "squaring the ratio added too many rounds: {r_small} -> {r_medium}"
    );
    assert!(
        r_large.saturating_sub(r_medium) <= 3,
        "{r_medium} -> {r_large}"
    );
    // And the phase-1 round count (a deterministic function of the schedule) is
    // genuinely monotone in the ratio.
    let phase1_at = |ratio: u64| {
        HeavyAllocator::default()
            .allocate_traced(n as u64 * ratio, n, 3)
            .1
            .phase1_rounds
    };
    assert!(phase1_at(1 << 12) >= phase1_at(1 << 6));
    assert!(phase1_at(1 << 15) >= phase1_at(1 << 12));
}

#[test]
fn excess_does_not_grow_with_ratio_unlike_single_choice() {
    let n = 1usize << 10;
    let excess_heavy = |ratio: u64| {
        let m = n as u64 * ratio;
        HeavyAllocator::default().allocate(m, n, 5).excess(m)
    };
    let excess_single = |ratio: u64| {
        let m = n as u64 * ratio;
        SingleChoiceAllocator::default().allocate(m, n, 5).excess(m)
    };
    // Heavy: flat in the ratio. Single choice: grows like sqrt(ratio).
    let h1 = excess_heavy(1 << 6);
    let h2 = excess_heavy(1 << 12);
    assert!((h1 - h2).abs() <= 6, "heavy excess moved: {h1} vs {h2}");
    let s1 = excess_single(1 << 6);
    let s2 = excess_single(1 << 12);
    assert!(
        s2 >= 3 * s1,
        "single-choice excess should grow substantially: {s1} vs {s2}"
    );
    assert!(
        h2 < s2 / 4,
        "heavy ({h2}) must beat single choice ({s2}) clearly"
    );
}

#[test]
fn heavy_config_knobs_are_respected() {
    let m = 1u64 << 16;
    let n = 1usize << 8;
    // Per-ball tracking.
    let tracked = HeavyAllocator::new(HeavyConfig {
        track_per_ball: true,
        ..HeavyConfig::default()
    })
    .allocate(m, n, 1);
    assert_eq!(tracked.census.per_ball_sent.len(), m as usize);
    assert!(tracked.census.mean_ball_sent() >= 1.0);
    // Parallel sampling must be bit-identical to sequential.
    let parallel = HeavyAllocator::new(HeavyConfig {
        parallel: true,
        ..HeavyConfig::default()
    })
    .allocate(m, n, 1);
    let sequential = HeavyAllocator::default().allocate(m, n, 1);
    assert_eq!(parallel.loads, sequential.loads);
}

#[test]
fn load_metrics_view_is_consistent_with_outcome() {
    let m = 1u64 << 14;
    let n = 1usize << 7;
    let out = HeavyAllocator::default().allocate(m, n, 9);
    let metrics: LoadMetrics = out.load_metrics();
    assert_eq!(metrics.total_balls, m);
    assert_eq!(metrics.bins, n);
    assert_eq!(metrics.max_load, out.max_load());
    assert_eq!(metrics.histogram.total(), n as u64);
}
