//! Property tests for the event-driven serving path:
//!
//! 1. **Codec ≡ `&str` reference** — the zero-allocation byte-slice
//!    `parse_request` classifies arbitrary lines (valid, malformed, and
//!    non-UTF-8) exactly as the blocking server's `&str` +
//!    `split_ascii_whitespace` parse does, with non-UTF-8 mapping to a bad
//!    request.
//! 2. **`release_many` ≡ looped `release`** — for arbitrary group
//!    partitions, with and without a spliced-in bogus ticket, the grouped
//!    departure surface produces the identical observer event stream, final
//!    loads, and error behaviour as the one-at-a-time loop.
//! 3. **Pipelined serving stress** — k concurrent pipelined connections
//!    through the reactor front-end conserve every ball and drop nothing.

use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use parallel_balanced_allocations::model::rng::SplitMix64;
use parallel_balanced_allocations::model::router::ReleaseEvent;
use parallel_balanced_allocations::model::{RouteError, RouterObserver, Ticket};
use parallel_balanced_allocations::net::codec::{parse_request, Request};
use parallel_balanced_allocations::net::{ReactorConfig, ReactorServer};
use parallel_balanced_allocations::obs::MetricsRegistry;
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::MAX_ADD_TIER;

// ---------------------------------------------------------------------------
// 1. Codec ≡ &str reference
// ---------------------------------------------------------------------------

/// The blocking server's classification, restated: decode as UTF-8 (the old
/// path could only ever see valid UTF-8 out of `read_line`; the codec maps
/// the rest to `Bad`), then `split_ascii_whitespace` over the verb table.
fn reference_parse(line: &[u8]) -> Request {
    let Ok(text) = std::str::from_utf8(line) else {
        return Request::Bad;
    };
    let mut parts = text.split_ascii_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("ROUTE"), Some(key), None) => match key.parse::<u64>() {
            Ok(key) => Request::Route { key },
            Err(_) => Request::Bad,
        },
        (Some("RELEASE"), Some(id), None) => match id.parse::<u64>() {
            Ok(id) => Request::Release { id },
            Err(_) => Request::Bad,
        },
        (Some("ADD"), Some(weight), tier) => {
            let tier = match tier {
                None => Some(0u32),
                Some(t) => t.parse::<u32>().ok().filter(|&t| t <= MAX_ADD_TIER),
            };
            match (weight.parse::<f64>(), tier, parts.next()) {
                (Ok(weight), Some(tier), None) if weight.is_finite() && weight > 0.0 => {
                    Request::Add {
                        weight: weight * (1u64 << tier) as f64,
                    }
                }
                _ => Request::Bad,
            }
        }
        (Some("DRAIN"), Some(bin), None) => match bin.parse::<u32>() {
            Ok(bin) => Request::Drain { bin },
            Err(_) => Request::Bad,
        },
        (Some("REMOVE"), Some(bin), None) => match bin.parse::<u32>() {
            Ok(bin) => Request::Remove { bin },
            Err(_) => Request::Bad,
        },
        (Some("MIGRATE"), None, None) => Request::Migrate,
        (Some("FLUSH"), None, None) => Request::Flush,
        (Some("STATS"), None, None) => Request::Stats,
        _ => Request::Bad,
    }
}

/// Builds one pseudo-random request line: sometimes a well-formed verb,
/// sometimes a near-miss (bad number, trailing token, huge tier), sometimes
/// arbitrary bytes including non-UTF-8 and interior control characters.
fn arbitrary_line(rng: &mut SplitMix64) -> Vec<u8> {
    let verbs = [
        "ROUTE", "RELEASE", "ADD", "DRAIN", "REMOVE", "MIGRATE", "FLUSH", "STATS",
    ];
    let mut line = Vec::new();
    match rng.next_u64() % 6 {
        // Well-formed verb with plausible arguments.
        0 | 1 => {
            let verb = verbs[(rng.next_u64() % verbs.len() as u64) as usize];
            line.extend_from_slice(verb.as_bytes());
            match verb {
                "ROUTE" | "RELEASE" => {
                    line.push(b' ');
                    line.extend_from_slice(rng.next_u64().to_string().as_bytes());
                }
                "DRAIN" | "REMOVE" => {
                    line.push(b' ');
                    line.extend_from_slice((rng.next_u64() as u32).to_string().as_bytes());
                }
                "ADD" => {
                    line.push(b' ');
                    let weight = (rng.next_u64() % 1000) as f64 / 8.0;
                    line.extend_from_slice(format!("{weight}").as_bytes());
                    if rng.next_u64().is_multiple_of(2) {
                        line.push(b' ');
                        line.extend_from_slice((rng.next_u64() % 40).to_string().as_bytes());
                    }
                }
                _ => {}
            }
        }
        // Near-miss: right verb, wrong shape.
        2 | 3 => {
            let verb = verbs[(rng.next_u64() % verbs.len() as u64) as usize];
            line.extend_from_slice(verb.as_bytes());
            match rng.next_u64() % 4 {
                0 => line.extend_from_slice(b" not-a-number"),
                1 => line.extend_from_slice(b" 12 extra"),
                2 => line.extend_from_slice(b" -3"),
                _ => line.extend_from_slice(b"  "),
            }
        }
        // Arbitrary ASCII-ish soup with odd whitespace.
        4 => {
            let len = (rng.next_u64() % 40) as usize;
            for _ in 0..len {
                let c = match rng.next_u64() % 8 {
                    0 => b' ',
                    1 => b'\t',
                    2..=4 => b'A' + (rng.next_u64() % 26) as u8,
                    5 | 6 => b'0' + (rng.next_u64() % 10) as u8,
                    _ => b'!',
                };
                line.push(c);
            }
        }
        // Arbitrary bytes, frequently invalid UTF-8.
        _ => {
            let len = (rng.next_u64() % 32) as usize;
            for _ in 0..len {
                line.push((rng.next_u64() % 256) as u8);
            }
        }
    }
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The byte-slice codec classifies every generated line exactly as the
    /// `&str` reference does.
    #[test]
    fn codec_matches_the_str_reference_parse(seed in 0u64..10_000) {
        let mut rng = SplitMix64::for_stream(seed, 0xc0dec, 0);
        for _ in 0..200 {
            let line = arbitrary_line(&mut rng);
            prop_assert_eq!(
                parse_request(&line),
                reference_parse(&line),
                "line {:?}",
                String::from_utf8_lossy(&line)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. release_many ≡ looped release
// ---------------------------------------------------------------------------

/// Records `(id, bin, load_after, resident)` per release event.
#[derive(Default)]
struct Tape {
    events: Vec<(u64, usize, u32, u64)>,
}

impl RouterObserver for Tape {
    fn on_release(&mut self, event: &ReleaseEvent) {
        self.events.push((
            event.ticket.id(),
            event.ticket.bin(),
            event.load_after,
            event.resident,
        ));
    }
}

/// A fresh taped router with `per` routed balls.
fn taped_router(
    bins: usize,
    per: u64,
    seed: u64,
) -> (ConcurrentRouter, Vec<Ticket>, Arc<Mutex<Tape>>) {
    let router = ConcurrentRouter::new(
        StreamConfig::new(bins)
            .batch_size(bins)
            .seed(seed)
            .shards(4),
    );
    let tape = Arc::new(Mutex::new(Tape::default()));
    router.add_observer(Arc::clone(&tape) as Arc<Mutex<dyn RouterObserver + Send>>);
    let mut rng = SplitMix64::for_stream(seed, 0x7e57, 1);
    let keys: Vec<u64> = (0..per).map(|_| rng.next_u64()).collect();
    let tickets = router
        .route_many(&keys)
        .expect("routing is infallible")
        .into_iter()
        .map(|p| p.ticket)
        .collect();
    (router, tickets, tape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary group partitions of the departure stream are bit-identical
    /// to the one-at-a-time loop: same observer events, same final loads,
    /// same `conserves_balls`.
    #[test]
    fn release_many_partitions_are_bit_identical_to_the_loop(
        bins_exp in 2u32..6,
        per in 1u64..400,
        chunk_seed in 0u64..1_000,
        seed in 0u64..1_000,
    ) {
        let bins = 1usize << bins_exp;
        let (looped, tickets, loop_tape) = taped_router(bins, per, seed);
        for &ticket in &tickets {
            looped.release(ticket).expect("issued ticket releases");
        }
        let (grouped, tickets2, group_tape) = taped_router(bins, per, seed);
        // Tickets carry a process-unique realm, so compare the placement
        // shape (id, bin) rather than the tickets themselves.
        let shape = |ts: &[Ticket]| ts.iter().map(|t| (t.id(), t.bin())).collect::<Vec<_>>();
        prop_assert_eq!(
            shape(&tickets),
            shape(&tickets2),
            "identical routers place identically"
        );
        let mut chunk_rng = SplitMix64::for_stream(chunk_seed, 0xc41a, 2);
        let mut at = 0usize;
        while at < tickets2.len() {
            let take = 1 + (chunk_rng.next_u64() % 97) as usize;
            let hi = (at + take).min(tickets2.len());
            grouped.release_many(&tickets2[at..hi]).expect("issued tickets release");
            at = hi;
        }
        prop_assert_eq!(
            &loop_tape.lock().unwrap().events,
            &group_tape.lock().unwrap().events
        );
        prop_assert_eq!(looped.loads(), grouped.loads());
        prop_assert!(grouped.conserves_balls());
        prop_assert_eq!(grouped.resident(), 0);
    }

    /// A bogus ticket spliced mid-group reproduces the loop's
    /// stop-at-first-error behaviour: the prefix commits, the failure names
    /// the bogus ticket, the suffix stays resident, and the event streams
    /// up to the failure are identical.
    #[test]
    fn release_many_error_path_matches_the_loop(
        per in 2u64..200,
        splice in 0u64..1_000,
        seed in 0u64..1_000,
    ) {
        let bins = 16usize;
        // The bogus ticket comes from a *different* router: same shape, but
        // a foreign realm — exactly what a stale or forged id looks like.
        let (foreign, foreign_tickets, _) = taped_router(bins, 1, seed ^ 0xdead);
        drop(foreign);
        let bogus = foreign_tickets[0];

        let (looped, tickets, loop_tape) = taped_router(bins, per, seed);
        let at = (splice % (per + 1)) as usize;
        let mut spliced = tickets.clone();
        spliced.insert(at, bogus);
        let mut loop_err = None;
        for &ticket in &spliced {
            if let Err(err) = looped.release(ticket) {
                loop_err = Some(err);
                break;
            }
        }
        // Tickets are realm-stamped, so the grouped router gets the same
        // splice built from its *own* tickets.
        let (grouped, tickets2, group_tape) = taped_router(bins, per, seed);
        let mut spliced2 = tickets2.clone();
        spliced2.insert(at, bogus);
        let group_err = grouped.release_many(&spliced2).expect_err("bogus ticket fails");
        // The two errors come from different routers (distinct realms), so
        // compare their shape: both must blame the bogus ticket's id.
        match (loop_err.expect("loop fails too"), group_err) {
            (
                RouteError::UnknownTicket { ticket: a },
                RouteError::UnknownTicket { ticket: b },
            ) => {
                prop_assert_eq!(a.id(), bogus.id());
                prop_assert_eq!(b.id(), bogus.id());
            }
            other => return Err(format!("unexpected error pair {other:?}")),
        }
        // The loop stopped at the bogus ticket; the grouped surface must
        // have committed exactly the same prefix.
        prop_assert_eq!(
            &loop_tape.lock().unwrap().events,
            &group_tape.lock().unwrap().events
        );
        prop_assert_eq!(looped.loads(), grouped.loads());
        prop_assert_eq!(looped.resident(), grouped.resident());
        prop_assert_eq!(grouped.resident(), per - at as u64);
    }

    /// An in-group duplicate (double release) falls back to loop semantics:
    /// first occurrence redeems, second errors, nothing else is disturbed.
    #[test]
    fn release_many_in_group_duplicate_matches_the_loop(
        per in 2u64..120,
        dup in 0u64..1_000,
        seed in 0u64..1_000,
    ) {
        let bins = 8usize;
        let (looped, tickets, loop_tape) = taped_router(bins, per, seed);
        let at = (dup % per) as usize;
        let mut spliced = tickets.clone();
        let repeat = spliced[at];
        spliced.push(repeat);
        let mut loop_err = None;
        for &ticket in &spliced {
            if let Err(err) = looped.release(ticket) {
                loop_err = Some(err);
                break;
            }
        }
        // Same splice, rebuilt from the grouped router's own realm-stamped
        // tickets.
        let (grouped, tickets2, group_tape) = taped_router(bins, per, seed);
        let mut spliced2 = tickets2.clone();
        spliced2.push(spliced2[at]);
        let group_err = grouped.release_many(&spliced2).expect_err("duplicate fails");
        match (loop_err.expect("loop fails too"), group_err) {
            (
                RouteError::UnknownTicket { ticket: a },
                RouteError::UnknownTicket { ticket: b },
            ) => {
                prop_assert_eq!(a.id(), repeat.id(), "the duplicate is blamed");
                prop_assert_eq!(b.id(), repeat.id(), "the duplicate is blamed");
            }
            other => return Err(format!("unexpected error pair {other:?}")),
        }
        prop_assert_eq!(
            &loop_tape.lock().unwrap().events,
            &group_tape.lock().unwrap().events
        );
        prop_assert_eq!(looped.loads(), grouped.loads());
        prop_assert_eq!(grouped.resident(), 0, "every real ticket released once");
    }
}

// ---------------------------------------------------------------------------
// 3. Pipelined serving stress
// ---------------------------------------------------------------------------

/// One pipelined client: routes `keys` in windows, then releases every
/// issued ticket the same way; returns the ids it was issued.
fn pipelined_client(
    addr: std::net::SocketAddr,
    seed: u64,
    stream_id: u64,
    keys: u64,
    window: usize,
) -> Vec<u64> {
    let raw = TcpStream::connect(addr).expect("connect");
    raw.set_nodelay(true).expect("nodelay");
    let mut writer = raw.try_clone().expect("clone");
    let mut reader = BufReader::new(raw);
    let mut rng = SplitMix64::for_stream(seed, 0x57e5, stream_id);
    let mut ids = Vec::with_capacity(keys as usize);
    let mut line = String::new();
    let mut sent = 0u64;
    while sent < keys {
        let take = window.min((keys - sent) as usize);
        let mut request = String::new();
        for _ in 0..take {
            use std::fmt::Write as _;
            let _ = writeln!(request, "ROUTE {}", rng.next_u64());
        }
        writer.write_all(request.as_bytes()).expect("write routes");
        for _ in 0..take {
            line.clear();
            assert_ne!(
                reader.read_line(&mut line).expect("reply"),
                0,
                "server hung up"
            );
            let id: u64 = line
                .trim_end()
                .rsplit(' ')
                .next()
                .and_then(|id| id.parse().ok())
                .expect("OK <bin> <id>");
            ids.push(id);
        }
        sent += take as u64;
    }
    let mut released = 0usize;
    while released < ids.len() {
        let take = window.min(ids.len() - released);
        let mut request = String::new();
        for id in &ids[released..released + take] {
            use std::fmt::Write as _;
            let _ = writeln!(request, "RELEASE {id}");
        }
        writer
            .write_all(request.as_bytes())
            .expect("write releases");
        for _ in 0..take {
            line.clear();
            assert_ne!(
                reader.read_line(&mut line).expect("reply"),
                0,
                "server hung up"
            );
            assert!(line.starts_with("OK "), "release reply: {line:?}");
        }
        released += take;
    }
    ids
}

/// k pipelined connections against one reactor server: every ball routed is
/// released, the drop ledger stays empty, and the request counter accounts
/// for every line.
#[test]
fn pipelined_connections_conserve_and_drop_nothing() {
    let (connections, per, window, seed) = (6u64, 200u64, 17usize, 41u64);
    let registry = Arc::new(MetricsRegistry::new());
    let router = ConcurrentRouter::with_metrics(
        StreamConfig::new(32).batch_size(32).seed(seed).shards(4),
        Arc::clone(&registry),
    );
    let server = ReactorServer::start(router, ReactorConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let all_ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| scope.spawn(move || pipelined_client(addr, seed, c, per, window)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    // Ids are unique across connections: the ticket ledger issued each once.
    let mut flat: Vec<u64> = all_ids.into_iter().flatten().collect();
    flat.sort_unstable();
    flat.dedup();
    assert_eq!(flat.len() as u64, connections * per, "no id issued twice");
    assert!(server.router().conserves_balls());
    assert_eq!(server.router().resident(), 0, "every ball released");
    server.shutdown();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("route.routed"), connections * per);
    assert_eq!(snap.counter("route.released"), connections * per);
    assert_eq!(snap.counter("server.requests"), 2 * connections * per);
    assert_eq!(snap.counter("server.bad_request"), 0);
    assert_eq!(snap.counter("server.unknown_ticket"), 0);
    assert_eq!(snap.counter("route.rejected_unknown_ticket"), 0);
}

/// The same stress through the portable fallback poller: identical
/// invariants, so the non-epoll path serves correctly too.
#[test]
fn pipelined_stress_on_the_fallback_poller() {
    let (connections, per, window, seed) = (3u64, 120u64, 11usize, 43u64);
    let registry = Arc::new(MetricsRegistry::new());
    let router = ConcurrentRouter::with_metrics(
        StreamConfig::new(16).batch_size(16).seed(seed).shards(4),
        Arc::clone(&registry),
    );
    let config = ReactorConfig {
        force_fallback_poller: true,
        ..ReactorConfig::default()
    };
    let server = ReactorServer::start(router, config).expect("bind loopback");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for c in 0..connections {
            scope.spawn(move || pipelined_client(addr, seed, c, per, window));
        }
    });
    assert!(server.router().conserves_balls());
    assert_eq!(server.router().resident(), 0);
    server.shutdown();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("route.routed"), connections * per);
    assert_eq!(snap.counter("server.bad_request"), 0);
}
