//! Replay and fault-injection properties, driven through the façade:
//!
//! 1. the trace codec round-trips byte-identically, and the committed
//!    `tests/golden/mini.trace` equals its canonical constructor's encoding;
//! 2. a committed trace replays **bit-identically** on `StreamAllocator` and
//!    a 1-caller `ConcurrentRouter` for all six policies under
//!    `num_threads ∈ {1, 4}` (and matches the committed golden snapshot);
//! 3. the one-shot adapter replays the same trace deterministically with a
//!    conserved ledger;
//! 4. every fault class of the `FaultPlan` harness fires its named `fault.*`
//!    counter while conservation and ledger invariants hold.
//!
//! CI runs this suite under `PBA_THREADS=4` as well: no assertion here may
//! depend on the ambient pool width (that is assertion 2's whole point).

use parallel_balanced_allocations::replay::{
    diff_golden, golden_line, inject_ingress_reorder,
    replay::{replay, ReplayError},
    Fault, FaultPlan, ReplayConfig, Trace, TraceError, TRACE_HEADER,
};
use parallel_balanced_allocations::stream::Policy;

const POLICIES: [Policy; 6] = [
    Policy::OneChoice,
    Policy::TwoChoice,
    Policy::DChoice(3),
    Policy::Threshold { d: 2, slack: 1 },
    Policy::WeightedTwoChoice,
    Policy::CapacityThreshold { d: 2, slack: 2 },
];

fn committed(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"))
}

#[test]
fn codec_round_trips_byte_identically() {
    for trace in [Trace::mini(), Trace::mini_reweighted()] {
        let encoded = trace.encode();
        assert!(encoded.starts_with(TRACE_HEADER));
        let decoded = Trace::decode(&encoded).expect("decode own encoding");
        assert_eq!(decoded, trace);
        assert_eq!(decoded.encode(), encoded, "encode∘decode must be identity");
    }
}

#[test]
fn committed_trace_matches_its_canonical_constructor() {
    assert_eq!(committed("mini.trace"), Trace::mini().encode());
    assert_eq!(
        committed("mini-batched.trace"),
        Trace::mini_batched().encode()
    );
    assert_eq!(
        committed("mini-reweighted.trace"),
        Trace::mini_reweighted().encode()
    );
    assert_eq!(
        committed("mini-membership.trace"),
        Trace::mini_membership().encode()
    );
}

#[test]
fn committed_batched_golden_matches_a_grouped_replay() {
    // The `mini-batched` golden is blessed through `route_many` with
    // `route_group = 7`; re-rendering rows through the grouped surface must
    // hit the committed lines exactly, and the route-by-route path must hit
    // the *same* lines — the bit-identity contract of the batched surface.
    let trace = Trace::decode(&committed("mini-batched.trace")).expect("v1 trace decodes");
    let snap = committed("mini-batched.snap");
    for policy in [Policy::TwoChoice, Policy::DChoice(3)] {
        for threads in [0usize, 4] {
            for group in [0usize, 7] {
                let config = ReplayConfig::stream(policy)
                    .num_threads(threads)
                    .route_group(group);
                let outcome = replay(&trace, &config).expect("stream replay");
                let line = golden_line(&outcome, &policy.name(), "uniform", threads);
                assert!(
                    snap.lines().any(|l| l == line),
                    "batched golden lacks the line just produced (group={group}):\n  {line}"
                );
            }
        }
        let outcome = replay(&trace, &ReplayConfig::concurrent(policy, 1).route_group(7))
            .expect("concurrent1 grouped replay");
        let line = golden_line(&outcome, &policy.name(), "uniform", 0);
        assert!(
            snap.lines().any(|l| l == line),
            "batched golden lacks the concurrent1 line:\n  {line}"
        );
    }
}

#[test]
fn committed_membership_golden_matches_a_fresh_replay() {
    // The drain/remove/re-add cycle of the v2 golden replays bit-identically
    // on the stream engine (threads 0 and 4) and the 1-caller concurrent
    // twin; the committed snapshot pins all three rows per policy.
    let trace = Trace::decode(&committed("mini-membership.trace")).expect("v2 trace decodes");
    assert!(trace.has_membership());
    let snap = committed("mini-membership.snap");
    for policy in [Policy::TwoChoice, Policy::Threshold { d: 2, slack: 1 }] {
        for threads in [0usize, 4] {
            let config = ReplayConfig::stream(policy).num_threads(threads);
            let outcome = replay(&trace, &config).expect("stream replay");
            let line = golden_line(&outcome, &policy.name(), "uniform", threads);
            assert!(
                snap.lines().any(|l| l == line),
                "membership golden lacks the line just produced:\n  {line}"
            );
        }
        let outcome = replay(&trace, &ReplayConfig::concurrent(policy, 1)).expect("concurrent1");
        let line = golden_line(&outcome, &policy.name(), "uniform", 0);
        assert!(
            snap.lines().any(|l| l == line),
            "membership golden lacks the concurrent1 line:\n  {line}"
        );
    }
}

#[test]
fn committed_trace_decodes_and_is_the_same_workload() {
    let decoded = Trace::decode(&committed("mini.trace")).expect("committed trace decodes");
    assert_eq!(decoded, Trace::mini());
}

#[test]
fn decoder_rejects_malformed_input() {
    assert!(matches!(
        Trace::decode("not-a-trace v9\n"),
        Err(TraceError::BadHeader)
    ));
    let truncated: String = Trace::mini()
        .encode()
        .lines()
        .take(10)
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(Trace::decode(&truncated).is_err());
}

#[test]
fn stream_and_one_caller_concurrent_are_bit_identical_for_all_policies() {
    let trace = Trace::decode(&committed("mini.trace")).unwrap();
    for policy in POLICIES {
        for threads in [1usize, 4] {
            let stream = replay(&trace, &ReplayConfig::stream(policy).num_threads(threads))
                .expect("stream replay");
            let concurrent = replay(
                &trace,
                &ReplayConfig::concurrent(policy, 1).num_threads(threads),
            )
            .expect("concurrent replay");
            assert_eq!(
                stream.placements,
                concurrent.placements,
                "placements diverged: {} threads={threads}",
                policy.name()
            );
            assert_eq!(stream.loads, concurrent.loads);
            assert_eq!(stream.gap_trajectory, concurrent.gap_trajectory);
            assert_eq!(stream.batches, concurrent.batches);
            assert_eq!(stream.drops, 0);
            assert_eq!(concurrent.drops, 0);
            assert!(stream.conserved && concurrent.conserved);
        }
    }
}

#[test]
fn replay_matches_the_committed_golden_snapshot() {
    // Re-render the stream rows the golden file pins (threads 0 and 4,
    // uniform weights) and check them line by line against the committed
    // snapshot — the same comparison `replay_golden` runs over the full
    // matrix, here gated on every `cargo test`.
    let trace = Trace::decode(&committed("mini.trace")).unwrap();
    let snap = committed("mini.snap");
    for policy in POLICIES {
        for threads in [0usize, 4] {
            let config = ReplayConfig::stream(policy).num_threads(threads);
            let outcome = replay(&trace, &config).unwrap();
            let line = golden_line(&outcome, &policy.name(), "uniform", threads);
            assert!(
                snap.lines().any(|l| l == line),
                "golden file lacks the line just produced:\n  {line}"
            );
        }
    }
    // And the whole-file diff helper agrees with itself.
    assert!(diff_golden("mini", &snap, &snap).is_none());
}

#[test]
fn one_shot_replay_is_deterministic_and_conserves() {
    let trace = Trace::decode(&committed("mini.trace")).unwrap();
    let a = replay(&trace, &ReplayConfig::one_shot()).unwrap();
    let b = replay(&trace, &ReplayConfig::one_shot()).unwrap();
    assert_eq!(a.placements, b.placements);
    assert_eq!(a.loads, b.loads);
    assert!(a.conserved);
    assert_eq!(a.routed, trace.arrivals());
}

#[test]
fn reweighting_traces_replay_on_stream_only() {
    let trace = Trace::mini_reweighted();
    assert!(replay(&trace, &ReplayConfig::stream(Policy::TwoChoice)).is_ok());
    assert!(matches!(
        replay(&trace, &ReplayConfig::concurrent(Policy::TwoChoice, 2)),
        Err(ReplayError::UnsupportedReweight { .. })
    ));
}

#[test]
fn multi_caller_replay_conserves_for_every_policy() {
    let trace = Trace::mini();
    for policy in POLICIES {
        let outcome = replay(&trace, &ReplayConfig::concurrent(policy, 4)).unwrap();
        assert!(outcome.conserved, "conservation under {}", policy.name());
        assert_eq!(outcome.routed, trace.arrivals());
        assert_eq!(outcome.drops, 0);
    }
}

#[test]
fn every_fault_class_fires_its_counter_and_keeps_invariants() {
    let trace = Trace::mini();
    let m = trace.arrivals();
    let faults = [
        Fault::CrashBin {
            after_arrival: m / 2,
            bin: 2,
        },
        Fault::DelayRelease {
            arrival: 0,
            until: m - 2,
        },
        Fault::DuplicateRelease { arrival: 5 },
        Fault::ReorderWindow {
            start: m / 3,
            len: 8,
        },
        Fault::PoisonObserver {
            after_arrival: m / 2,
        },
        Fault::Backpressure { capacity: 4 },
    ];
    for fault in faults {
        let run = FaultPlan::single(fault).run(&trace, Policy::TwoChoice);
        assert!(
            !run.checks.is_empty(),
            "fault {} produced no checks",
            fault.name()
        );
        for check in &run.checks {
            assert!(
                check.passed(),
                "fault {} failed: counter {} fired {}, invariant error {:?}",
                check.fault,
                check.counter,
                check.fired,
                check.invariant_error
            );
        }
        assert!(run.outcome.conserved, "conservation under {}", fault.name());
        assert!(
            run.registry.snapshot().counter(fault.counter()) > 0,
            "named counter {} must be visible in the registry",
            fault.counter()
        );
    }
}

#[test]
fn combined_fault_plan_survives_everything_at_once() {
    let trace = Trace::mini();
    let run = FaultPlan {
        faults: vec![
            Fault::CrashBin {
                after_arrival: 20,
                bin: 3,
            },
            Fault::DelayRelease {
                arrival: 5,
                until: 40,
            },
            Fault::DuplicateRelease { arrival: 10 },
            Fault::ReorderWindow { start: 24, len: 6 },
            Fault::PoisonObserver { after_arrival: 42 },
            Fault::Backpressure { capacity: 4 },
        ],
    }
    .run(&trace, Policy::Threshold { d: 2, slack: 1 });
    assert!(run.all_passed());
    assert!(run.outcome.conserved);
    let snap = run.registry.snapshot();
    assert!(snap.counter("route.rejected_unknown_ticket") > 0);
    assert!(snap.counter("observer.errors") > 0);
}

#[test]
fn ingress_reordering_is_counted_not_dropped() {
    let trace = Trace::mini();
    let (check, late) = inject_ingress_reorder(&trace, Policy::TwoChoice, 8);
    assert!(check.passed(), "{:?}", check.invariant_error);
    assert!(
        late > 0,
        "held-back balls must land in ingress.late_arrivals"
    );
}
