//! # Parallel Balanced Allocations: The Heavily Loaded Case — reproduction
//!
//! This crate is the façade of a full reproduction of
//! *Parallel Balanced Allocations: The Heavily Loaded Case*
//! (Christoph Lenzen, Merav Parter, Eylon Yogev — SPAA 2019, arXiv:1904.07532).
//!
//! The paper studies the parallel balls-into-bins problem in the heavily loaded
//! regime `m ≫ n` and shows that a simple symmetric threshold algorithm achieves
//! a maximal bin load of `m/n + O(1)` within `O(log log(m/n) + log* n)`
//! synchronous rounds, that this round count is optimal for uniform threshold
//! algorithms, and that an asymmetric variant needs only `O(1)` rounds.
//!
//! The workspace is organised as one crate per subsystem; this façade re-exports
//! them under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `pba-model` | the synchronous message-passing model: protocol trait, agent/count engines, RNG streams, message accounting, heterogeneous bin weights ([`BinWeights`](model::BinWeights)), [`Allocator`](model::Allocator), the unified [`Router`](model::Router) interface (handle-based routing, [`OneShotRouter`](model::OneShotRouter), pluggable [`RouterObserver`](model::RouterObserver)s) |
//! | [`algorithms`] | `pba-algorithms` | `A_heavy`, `A_light` (LW16 substrate), the asymmetric superbin algorithm and its constant-round weighted variant, the trivial deterministic sweep, the naive fixed-threshold strawman, threshold schedules |
//! | [`baselines`] | `pba-baselines` | single-choice, sequential `Greedy[d]`, always-go-left, batched two-choice |
//! | [`lowerbound`] | `pba-lowerbound` | the Section 4 apparatus: rejection census, class decomposition, degree simulation, round predictions |
//! | [`concurrent`] | `pba-concurrent` | shared-memory execution: atomic bins, rayon executor, crossbeam actor executor, speed-up harness |
//! | [`membership`] | `pba-membership` | elastic bin lifecycle: [`Membership`](membership::Membership) state machine (active/draining/retired slots), [`MembershipPlan`](membership::MembershipPlan)s staged via `&self` handles and applied at batch boundaries |
//! | [`stream`] | `pba-stream` | the online, sharded, batched streaming allocation engine (two-choice on stale loads, weighted two-choice and capacity-aware thresholds for heterogeneous backends, arrival processes, ticket-based churn scenarios, runtime reweighting) — a native [`Router`](model::Router) — plus the **concurrent serving core** ([`ConcurrentRouter`](stream::ConcurrentRouter): a cloneable shared handle routing from many threads at once over epoch-published snapshots) |
//! | [`stats`] | `pba-stats` | tails, histograms, load metrics, fits, tables, multi-seed aggregation |
//! | [`obs`] | `pba-obs` | the observability substrate: [`MetricsRegistry`](obs::MetricsRegistry) (counters, gauges, log-bucketed latency histograms), pluggable [`MetricSink`](obs::MetricSink)s, the "no silent drops" counter inventory |
//! | [`replay`] | `pba-replay` | deterministic trace replay: the versioned trace codec ([`Trace`](replay::Trace)), [`TraceRecorder`](replay::TraceRecorder), the [`replay()`](replay::replay::replay) driver (any engine × all policies), golden-snapshot hashing, and the scripted fault-injection harness ([`FaultPlan`](replay::FaultPlan)) with post-fault invariant checks |
//! | [`net`] | `pba-net` | the event-driven serving path: [`ReactorServer`](net::ReactorServer) (a fixed pool of reactor threads driving nonblocking connections via raw `epoll` on Linux, portable poll-loop fallback elsewhere), the zero-allocation line-protocol codec, and batched `ROUTE`/`RELEASE` pipelining |
//! | [`workloads`] | `pba-workloads` | experiment configurations and the E1–E19 experiment definitions |
//!
//! ## Quick start
//!
//! ```
//! use parallel_balanced_allocations::prelude::*;
//!
//! let m = 1u64 << 16;       // balls
//! let n = 1usize << 8;      // bins
//! let outcome = HeavyAllocator::default().allocate(m, n, 42);
//!
//! assert!(outcome.is_complete(m));
//! // Theorem 1: the excess over ⌈m/n⌉ is O(1).
//! assert!(outcome.excess(m) <= 8);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index and measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pba_algorithms as algorithms;
pub use pba_baselines as baselines;
pub use pba_concurrent as concurrent;
pub use pba_lowerbound as lowerbound;
pub use pba_membership as membership;
pub use pba_model as model;
pub use pba_net as net;
pub use pba_obs as obs;
pub use pba_replay as replay;
pub use pba_stats as stats;
pub use pba_stream as stream;
pub use pba_workloads as workloads;

/// The most common imports for library users.
pub mod prelude {
    pub use pba_algorithms::{
        AsymmetricAllocator, HeavyAllocator, HeavyConfig, LightAllocator, LightConfig,
        NaiveThresholdAllocator, TrivialAllocator, WeightedAsymmetricAllocator,
    };
    pub use pba_baselines::{GreedyDAllocator, SingleChoiceAllocator};
    pub use pba_membership::{BinState, Membership, MembershipEvent, MembershipPlan};
    pub use pba_model::{
        AllocationOutcome, Allocator, BinWeights, EngineConfig, OneShotRouter, Placement,
        RouteError, Router, RouterObserver, RouterStats, Ticket,
    };
    pub use pba_net::{ReactorConfig, ReactorServer};
    pub use pba_obs::{MetricsRegistry, MetricsSnapshot, SinkHub};
    pub use pba_replay::{
        replay::replay, Fault, FaultPlan, ReplayConfig, ReplayEngine, Trace, TraceRecorder,
    };
    pub use pba_stats::{LoadMetrics, Table};
    pub use pba_stream::{
        ArrivalProcess, ConcurrentRouter, LineClient, Policy as StreamPolicy, ServerConfig,
        SocketServer, StreamAllocator, StreamConfig, ThreadPool, ThreadPoolBuilder,
    };
}

/// The arXiv identifier of the reproduced paper.
pub const PAPER_ARXIV_ID: &str = "1904.07532";

/// The venue of the reproduced paper.
pub const PAPER_VENUE: &str = "SPAA 2019";

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let out = HeavyAllocator::default().allocate(1 << 12, 1 << 6, 1);
        assert!(out.is_complete(1 << 12));
        assert_eq!(crate::PAPER_VENUE, "SPAA 2019");
        assert!(crate::PAPER_ARXIV_ID.contains("1904"));
    }
}
