//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so this local crate provides
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `ProptestConfig`
//! and integer-range strategies with a deliberately simple engine: every test
//! function draws `cases` inputs from a deterministic per-test RNG (seeded
//! from the test name, so runs are reproducible) and executes the body; a
//! failed `prop_assert!` panics with the case's inputs in the message.
//! There is no shrinking and no persistence — failures report the exact
//! drawn values instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name so each test gets a reproducible,
    /// test-specific stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `0` when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Modulo bias is irrelevant at test-strategy ranges.
        self.next_u64() % bound
    }
}

/// A value generator; implemented for integer ranges.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

int_strategy!(u8, u16, u32, u64, usize);

/// The most common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Soft assertion: fails the current case (with formatted context) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Soft equality assertion, see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left,
                right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// The `proptest!` block: declares property tests whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            config = (<$crate::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(::core::stringify!($name));
            for case_index in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    ::core::panic!(
                        "proptest {} failed at case {} with inputs {}: {}",
                        ::core::stringify!($name),
                        case_index,
                        ::std::format!(
                            ::core::concat!($("  ", ::core::stringify!($arg), " = {:?}",)*),
                            $($arg),*
                        ),
                        message,
                    );
                }
            }
        }
        $crate::__proptest_tests!{ config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 1usize..=4, z in 0u32..1000) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y), "y = {} out of range", y);
            prop_assert_eq!(z, z);
        }
    }

    proptest! {
        /// Default config applies when no attribute is given.
        #[test]
        fn default_config_runs(a in 0u8..255) {
            prop_assert!(a < 255);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let mut c = TestRng::deterministic("u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    // Generated without #[test] so the harness does not run it directly; the
    // should_panic test below drives it.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        fn failing_inner(x in 0u32..10) {
            prop_assert!(x > 100, "x = {} is not > 100", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest failing_inner failed")]
    fn failing_assertion_panics_with_context() {
        failing_inner();
    }
}
