//! The persistent work-stealing pool behind every parallel operation of this
//! shim.
//!
//! Workers are long-lived OS threads, each owning a deque of tasks. A
//! parallel operation cuts its input into several contiguous chunks per
//! prospective worker (oversplitting, so uneven chunk costs can rebalance),
//! boxes one job per chunk, round-robins all but the first across the worker
//! deques, and runs the first on the calling thread. Workers pop their own
//! deque from the front and, when it runs dry, **steal** from siblings' backs;
//! the caller joins in, stealing queued tasks instead of idling while it waits
//! for its batch. Wake-ups travel over a [`crossbeam::channel`] of unit
//! tokens — exactly one token per injected task, so a parked worker wakes only
//! when a task exists and every injected task is covered by some wake-up.
//! Dispatch costs a deque push plus a token send instead of an OS thread
//! spawn.
//!
//! Stealing moves *execution* between threads, never *results*: a chunk job
//! writes into its own pre-carved output window (or part vector), so which
//! thread runs it cannot affect what any operation returns.
//!
//! ## Lifetime erasure
//!
//! Jobs borrow the caller's stack (slices, closures), but the workers are
//! `'static` threads, so each submitted job is transmuted from
//! `Box<dyn FnOnce() + Send + 'env>` to `'static`. Soundness rests on one
//! invariant, enforced by [`run_jobs`]: **the call does not return — not even
//! by unwinding — until every submitted job has completed**, so no job can
//! outlive the frame it borrows from. A wait-on-drop guard keeps the barrier
//! in place when the caller's own chunk panics.
//!
//! ## Panics
//!
//! A panicking job is caught on the worker, its payload is parked in the
//! batch's latch, and the first payload is re-raised on the calling thread
//! after the batch completes. The worker itself survives — a panic never
//! poisons the pool.
//!
//! ## Nesting
//!
//! A parallel operation invoked from *inside* a pool task runs inline on that
//! worker ([`in_worker`] guards both the worker-count computation and
//! [`run_jobs`]), so nested `par_iter` calls cannot deadlock on a full queue.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crossbeam::channel;

/// A borrowed unit of work: one contiguous chunk of a parallel operation.
pub(crate) type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A lifetime-erased job as it travels to a worker.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True on pool worker threads; parallel operations check it to fall back
    /// to inline execution instead of re-entering the pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Stack of pools installed on this thread by [`ThreadPool::install`]
    /// (innermost last).
    static INSTALLED: RefCell<Vec<Arc<PoolCore>>> = const { RefCell::new(Vec::new()) };
}

/// True when the current thread is a pool worker executing a task.
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// The environment/default worker count: `PBA_THREADS` (if set to a positive
/// integer) or the machine's available parallelism. Reading it does **not**
/// start the global pool.
pub(crate) fn default_threads() -> usize {
    std::env::var("PBA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The thread count governing parallel operations on the current thread: the
/// innermost installed pool's, or the global default.
pub(crate) fn installed_threads() -> usize {
    INSTALLED
        .with(|stack| stack.borrow().last().map(|core| core.threads))
        .unwrap_or_else(default_threads)
}

/// Completion latch of one submitted batch: counts outstanding jobs and parks
/// the first panic payload for re-raise on the caller.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Marks one job complete, parking its panic payload (first one wins).
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            drop(state);
            self.done.notify_all();
        }
    }

    /// Blocks until every job of the batch has completed.
    fn wait(&self) {
        let mut state = self.state.lock().expect("latch lock");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch lock");
        }
    }

    /// The parked panic payload, if any job panicked.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().expect("latch lock").panic.take()
    }
}

/// The task store of one pool: per-worker deques plus the steal counter.
/// Shared by the workers, the submitting callers, and [`PoolCore`].
struct Injector {
    /// One deque per worker thread (empty vec for a 1-thread pool). Owners
    /// pop the front; everyone else steals from the back, so an owner and a
    /// thief racing on a near-empty deque contend on the lock, not on the
    /// same task twice.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin cursor for task placement.
    next: AtomicUsize,
    /// Tasks executed by a thread that does not own the deque they were
    /// queued on (including caller help-loop executions). Diagnostic only.
    steals: AtomicU64,
}

impl Injector {
    fn new(workers: usize) -> Self {
        Self {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Queues one task on the next deque in round-robin order.
    fn push(&self, task: Task) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        self.deques[i]
            .lock()
            .expect("pool deque lock")
            .push_back(task);
    }

    /// Takes one queued task: the owner's own deque first (front), then one
    /// full sweep over the other deques (back = stealing). `own` is `None`
    /// for threads without a deque (submitting callers helping out). Returns
    /// `None` only after a sweep in which every other deque was observed
    /// empty.
    fn take(&self, own: Option<usize>) -> Option<Task> {
        if let Some(w) = own {
            if let Some(task) = self.deques[w].lock().expect("pool deque lock").pop_front() {
                return Some(task);
            }
        }
        let n = self.deques.len();
        let start = own.map_or(0, |w| w + 1);
        for i in 0..n {
            let d = (start + i) % n;
            if own == Some(d) {
                continue;
            }
            if let Some(task) = self.deques[d].lock().expect("pool deque lock").pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }
}

/// Shared state of one pool: the wake-token channel, the task injector, and
/// the worker handles.
pub(crate) struct PoolCore {
    /// Wake-token sender; `None` once the pool has been shut down. Exactly
    /// one token is sent per injected task (after the task is visible in its
    /// deque), so a worker waking on a token either finds work or learns a
    /// sibling already claimed it. Workers exit when the sender is dropped.
    tx: Mutex<Option<channel::Sender<()>>>,
    /// The per-worker task deques.
    injector: Arc<Injector>,
    /// Worker join handles, reaped by [`ThreadPool::drop`].
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// The configured thread count (caller + workers).
    threads: usize,
}

impl PoolCore {
    /// Starts `threads.saturating_sub(1)` workers (the calling thread is the
    /// remaining lane; a 1-thread pool runs everything inline and spawns
    /// nothing).
    fn start(threads: usize) -> Self {
        let workers = threads.saturating_sub(1);
        let injector = Arc::new(Injector::new(workers));
        let (tx, rx) = channel::unbounded::<()>();
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let rx = rx.clone();
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("pba-pool-worker-{w}"))
                    .spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        // Tasks catch their own panics, so this loop only ends
                        // on disconnect (pool shutdown). Each wake-up drains:
                        // own deque first, then steals, until a full sweep
                        // finds nothing.
                        while rx.recv().is_ok() {
                            while let Some(task) = injector.take(Some(w)) {
                                task();
                            }
                        }
                        // Shutdown sweep: no submission can be in flight
                        // (`run_jobs` never returns before its batch drains),
                        // but leave nothing behind regardless.
                        while let Some(task) = injector.take(Some(w)) {
                            task();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            tx: Mutex::new(Some(tx)),
            injector,
            handles: Mutex::new(handles),
            threads,
        }
    }
}

/// The lazily-initialized global pool every parallel operation uses unless a
/// [`ThreadPool::install`] scope overrides it. Sized by [`default_threads`]
/// (i.e. `PBA_THREADS` or the core count) and never torn down.
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("building the global pool cannot fail")
    })
}

/// The pool a submission from the current thread goes to.
fn current_core() -> Arc<PoolCore> {
    INSTALLED
        .with(|stack| stack.borrow().last().map(Arc::clone))
        .unwrap_or_else(|| Arc::clone(&global().core))
}

/// Runs a batch of chunk jobs to completion: the first job on the calling
/// thread, the rest queued on the pool's worker deques. After its own job the
/// caller does not idle — it steals queued tasks (its own batch's or any
/// other's) until the deques run dry, then blocks on the batch latch. Blocks
/// until every job has finished; re-raises the first panic. Falls back to
/// fully inline execution for single-job batches and when called from inside
/// a pool task.
pub(crate) fn run_jobs(mut jobs: Vec<Job<'_>>) {
    if jobs.len() <= 1 || in_worker() {
        for job in jobs {
            job();
        }
        return;
    }
    let caller_job = jobs.remove(0);
    let core = current_core();
    let latch = Arc::new(Latch::new(jobs.len()));
    let injector = Arc::clone(&core.injector);
    {
        let tx = core.tx.lock().expect("pool injector lock");
        for job in jobs {
            // SAFETY: `Box<dyn FnOnce() + Send + 'env>` and the `'static`
            // form have identical layout (a fat pointer); the transmute only
            // erases the borrow lifetime. The job cannot outlive its borrows
            // because this function does not return — even by unwinding, see
            // the WaitGuard below — until the latch counts it complete.
            #[allow(unsafe_code)]
            let job: Task = unsafe { std::mem::transmute::<Job<'_>, Task>(job) };
            let latch = Arc::clone(&latch);
            let task: Task = Box::new(move || {
                let panic = catch_unwind(AssertUnwindSafe(job)).err();
                latch.complete(panic);
            });
            match tx.as_ref() {
                Some(tx) if !injector.deques.is_empty() => {
                    // Task first, token second: a worker woken by the token
                    // is guaranteed to see the task (or see that a sibling
                    // took it). A failed send means the workers are gone
                    // (pool shut down mid-use) — the help loop below will
                    // execute the queued task on this thread.
                    injector.push(task);
                    let _ = tx.send(());
                }
                // No workers to hand the task to: run it inline.
                _ => task(),
            }
        }
    }

    /// Blocks on the latch when dropped: the unwind-safe form of "never
    /// return while workers may still borrow the caller's frame".
    struct WaitGuard<'a>(&'a Latch);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }

    let guard = WaitGuard(&latch);
    caller_job();
    // Help instead of idling: steal queued tasks until a full sweep finds
    // nothing, then wait out the stragglers other threads are running.
    while let Some(task) = injector.take(None) {
        task();
    }
    drop(guard);
    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (this shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count (`PBA_THREADS` or the
    /// number of cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 = the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            core: Arc::new(PoolCore::start(threads)),
        })
    }
}

/// A persistent worker pool. [`ThreadPool::install`] scopes parallel
/// operations of the current thread onto this pool's workers; dropping the
/// pool disconnects the injector, lets the workers drain and exit, and joins
/// them — so building, using and dropping pools of different sizes in one
/// process (as the test-suite does) is safe.
pub struct ThreadPool {
    core: Arc<PoolCore>,
}

impl ThreadPool {
    /// Runs `op` with this pool receiving all parallel operations invoked
    /// from the current thread (restored on exit, even by panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED.with(|stack| stack.borrow_mut().push(Arc::clone(&self.core)));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.core.threads
    }

    /// Number of tasks this pool executed on a thread other than the one
    /// whose deque they were queued on (worker-to-worker steals plus caller
    /// help-loop executions). A diagnostic for load-balance tests and
    /// benchmarks; not part of the real rayon API.
    pub fn steal_count(&self) -> u64 {
        self.core.injector.steals.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.core.threads)
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the injector: workers finish the queued tasks, observe
        // the hang-up, and exit; then reap them. `install` borrows the pool,
        // so no submission can race this.
        self.core.tx.lock().expect("pool injector lock").take();
        let handles = std::mem::take(&mut *self.core.handles.lock().expect("pool handles lock"));
        for handle in handles {
            // A worker only ends by returning from its loop; it cannot have
            // panicked (tasks catch their own), so join errors are unreachable.
            handle.join().expect("pool worker exited cleanly");
        }
    }
}
