//! The persistent worker pool behind every parallel operation of this shim.
//!
//! Workers are long-lived OS threads parked on a [`crossbeam::channel`]
//! receiver (the shim channel is MPMC: every worker clones the same receiver
//! and competes for tasks). A parallel operation cuts its input into one
//! contiguous chunk per prospective worker, boxes one job per chunk, injects
//! all but the first into the pool, and runs the first on the calling thread —
//! so an operation with `w` chunks uses the caller plus `w − 1` workers, and
//! dispatch costs a channel send instead of an OS thread spawn.
//!
//! ## Lifetime erasure
//!
//! Jobs borrow the caller's stack (slices, closures), but the workers are
//! `'static` threads, so each submitted job is transmuted from
//! `Box<dyn FnOnce() + Send + 'env>` to `'static`. Soundness rests on one
//! invariant, enforced by [`run_jobs`]: **the call does not return — not even
//! by unwinding — until every submitted job has completed**, so no job can
//! outlive the frame it borrows from. A wait-on-drop guard keeps the barrier
//! in place when the caller's own chunk panics.
//!
//! ## Panics
//!
//! A panicking job is caught on the worker, its payload is parked in the
//! batch's latch, and the first payload is re-raised on the calling thread
//! after the batch completes. The worker itself survives — a panic never
//! poisons the pool.
//!
//! ## Nesting
//!
//! A parallel operation invoked from *inside* a pool task runs inline on that
//! worker ([`in_worker`] guards both the worker-count computation and
//! [`run_jobs`]), so nested `par_iter` calls cannot deadlock on a full queue.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crossbeam::channel;

/// A borrowed unit of work: one contiguous chunk of a parallel operation.
pub(crate) type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A lifetime-erased job as it travels to a worker.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True on pool worker threads; parallel operations check it to fall back
    /// to inline execution instead of re-entering the pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Stack of pools installed on this thread by [`ThreadPool::install`]
    /// (innermost last).
    static INSTALLED: RefCell<Vec<Arc<PoolCore>>> = const { RefCell::new(Vec::new()) };
}

/// True when the current thread is a pool worker executing a task.
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// The environment/default worker count: `PBA_THREADS` (if set to a positive
/// integer) or the machine's available parallelism. Reading it does **not**
/// start the global pool.
pub(crate) fn default_threads() -> usize {
    std::env::var("PBA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The thread count governing parallel operations on the current thread: the
/// innermost installed pool's, or the global default.
pub(crate) fn installed_threads() -> usize {
    INSTALLED
        .with(|stack| stack.borrow().last().map(|core| core.threads))
        .unwrap_or_else(default_threads)
}

/// Completion latch of one submitted batch: counts outstanding jobs and parks
/// the first panic payload for re-raise on the caller.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Marks one job complete, parking its panic payload (first one wins).
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            drop(state);
            self.done.notify_all();
        }
    }

    /// Blocks until every job of the batch has completed.
    fn wait(&self) {
        let mut state = self.state.lock().expect("latch lock");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch lock");
        }
    }

    /// The parked panic payload, if any job panicked.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().expect("latch lock").panic.take()
    }
}

/// Shared state of one pool: the task injector plus the worker handles.
pub(crate) struct PoolCore {
    /// Task injector; `None` once the pool has been shut down. Workers exit
    /// when the sender is dropped *and* the queue is drained.
    tx: Mutex<Option<channel::Sender<Task>>>,
    /// Worker join handles, reaped by [`ThreadPool::drop`].
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// The configured thread count (caller + workers).
    threads: usize,
}

impl PoolCore {
    /// Starts `threads.saturating_sub(1)` workers (the calling thread is the
    /// remaining lane; a 1-thread pool runs everything inline and spawns
    /// nothing).
    fn start(threads: usize) -> Self {
        let (tx, rx) = channel::unbounded::<Task>();
        let handles: Vec<_> = (1..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("pba-pool-worker-{i}"))
                    .spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        // Tasks catch their own panics, so this loop only ends
                        // on disconnect (pool shutdown).
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            threads,
        }
    }
}

/// The lazily-initialized global pool every parallel operation uses unless a
/// [`ThreadPool::install`] scope overrides it. Sized by [`default_threads`]
/// (i.e. `PBA_THREADS` or the core count) and never torn down.
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("building the global pool cannot fail")
    })
}

/// The pool a submission from the current thread goes to.
fn current_core() -> Arc<PoolCore> {
    INSTALLED
        .with(|stack| stack.borrow().last().map(Arc::clone))
        .unwrap_or_else(|| Arc::clone(&global().core))
}

/// Runs a batch of chunk jobs to completion: the first job on the calling
/// thread, the rest on pool workers. Blocks until every job has finished;
/// re-raises the first panic. Falls back to fully inline execution for
/// single-job batches and when called from inside a pool task.
pub(crate) fn run_jobs(mut jobs: Vec<Job<'_>>) {
    if jobs.len() <= 1 || in_worker() {
        for job in jobs {
            job();
        }
        return;
    }
    let caller_job = jobs.remove(0);
    let core = current_core();
    let latch = Arc::new(Latch::new(jobs.len()));
    {
        let tx = core.tx.lock().expect("pool injector lock");
        for job in jobs {
            // SAFETY: `Box<dyn FnOnce() + Send + 'env>` and the `'static`
            // form have identical layout (a fat pointer); the transmute only
            // erases the borrow lifetime. The job cannot outlive its borrows
            // because this function does not return — even by unwinding, see
            // the WaitGuard below — until the latch counts it complete.
            #[allow(unsafe_code)]
            let job: Task = unsafe { std::mem::transmute::<Job<'_>, Task>(job) };
            let latch = Arc::clone(&latch);
            let task: Task = Box::new(move || {
                let panic = catch_unwind(AssertUnwindSafe(job)).err();
                latch.complete(panic);
            });
            match tx.as_ref() {
                // A worker picks the task up; `send` only fails if every
                // worker already exited (pool shut down mid-use), in which
                // case the task comes back in the error and runs inline.
                Some(tx) => {
                    if let Err(channel::SendError(task)) = tx.send(task) {
                        task();
                    }
                }
                None => task(),
            }
        }
    }

    /// Blocks on the latch when dropped: the unwind-safe form of "never
    /// return while workers may still borrow the caller's frame".
    struct WaitGuard<'a>(&'a Latch);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }

    let guard = WaitGuard(&latch);
    caller_job();
    drop(guard);
    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (this shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count (`PBA_THREADS` or the
    /// number of cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 = the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            core: Arc::new(PoolCore::start(threads)),
        })
    }
}

/// A persistent worker pool. [`ThreadPool::install`] scopes parallel
/// operations of the current thread onto this pool's workers; dropping the
/// pool disconnects the injector, lets the workers drain and exit, and joins
/// them — so building, using and dropping pools of different sizes in one
/// process (as the test-suite does) is safe.
pub struct ThreadPool {
    core: Arc<PoolCore>,
}

impl ThreadPool {
    /// Runs `op` with this pool receiving all parallel operations invoked
    /// from the current thread (restored on exit, even by panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED.with(|stack| stack.borrow_mut().push(Arc::clone(&self.core)));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.core.threads
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.core.threads)
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the injector: workers finish the queued tasks, observe
        // the hang-up, and exit; then reap them. `install` borrows the pool,
        // so no submission can race this.
        self.core.tx.lock().expect("pool injector lock").take();
        let handles = std::mem::take(&mut *self.core.handles.lock().expect("pool handles lock"));
        for handle in handles {
            // A worker only ends by returning from its loop; it cannot have
            // panicked (tasks catch their own), so join errors are unreachable.
            handle.join().expect("pool worker exited cleanly");
        }
    }
}
