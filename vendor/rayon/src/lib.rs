//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no crates.io access, so this local crate provides
//! the same names (`prelude::*`, `par_iter`, `par_chunks_mut`, `zip`,
//! `filter_map`, `for_each`, `collect`, `collect_into_vec`,
//! `ThreadPoolBuilder`) with a real data-parallel implementation on top of a
//! **persistent work-stealing pool** (the `pool` module): inputs are cut into
//! several contiguous chunks per worker (so an idle thread can steal queued
//! chunks from a busy sibling's deque), chunk jobs are injected into a
//! lazily-started global pool of long-lived threads (or the pool installed by
//! [`ThreadPool::install`]), and results are assembled in input order, so
//! every operation is deterministic and produces exactly what the sequential
//! execution would — for any worker count. Stealing redistributes which
//! thread *executes* a chunk, never where its results land: each chunk owns a
//! pre-carved window of the output.
//!
//! The worker count comes from, in order: the innermost installed
//! [`ThreadPool`], the `PBA_THREADS` environment variable, the machine's
//! available parallelism. `PBA_THREADS` exists so CI can force the parallel
//! code paths on single-core containers.
//!
//! Differences from real rayon: splitting is eager (a fixed fan-out chosen up
//! front rather than adaptive join-based splitting), and only the combinators
//! this workspace needs are provided.

#![deny(unsafe_code)]

use std::mem::MaybeUninit;

mod pool;

pub use pool::{ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// Below this many items per chunk, stop splitting. Dispatching a chunk to
/// the persistent pool costs a boxed job plus a deque push and a token send
/// (on the order of a microsecond) — far below the ~30 µs a per-call thread
/// spawn used to cost — so the cutoff sits where per-item work of ~100 ns
/// amortises the dispatch, not the spawn.
const MIN_ITEMS_PER_WORKER: usize = 256;

/// Chunks per worker thread when the input is large enough: oversplitting
/// gives the work-stealing pool slack to rebalance when chunk costs are
/// uneven (a thread whose chunks finish early steals queued chunks from a
/// busy sibling instead of idling at the batch barrier).
const CHUNKS_PER_WORKER: usize = 4;

/// Number of worker threads parallel operations from the current thread would
/// use (innermost installed pool, else `PBA_THREADS`, else core count).
pub fn current_num_threads() -> usize {
    pool::installed_threads()
}

fn worker_count(items: usize) -> usize {
    worker_count_min(items, MIN_ITEMS_PER_WORKER)
}

/// Chunk count for `items` under a `min_len` per-chunk cutoff: up to
/// [`CHUNKS_PER_WORKER`] chunks per thread, never so many that a chunk drops
/// below `min_len` items. Inside a pool task this is always 1: nested
/// parallel operations run inline on their worker. A 1-thread pool also gets
/// 1 (splitting without a second thread is pure overhead).
fn worker_count_min(items: usize, min_len: usize) -> usize {
    if pool::in_worker() {
        return 1;
    }
    let threads = current_num_threads();
    if threads <= 1 {
        return 1;
    }
    (threads * CHUNKS_PER_WORKER)
        .min(items / min_len.max(1))
        .max(1)
}

/// Parallel shared-reference iterator over a slice (the result of `par_iter`).
pub struct ParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Mirrors rayon's `with_min_len`: guarantees every worker gets at least
    /// `min` items, i.e. lowers (or raises) the sequential cutoff. Use a small
    /// `min` for coarse items whose per-item work is large.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Parallel `filter_map`; lazily evaluated, driven by `collect`.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        F: Fn(&'a T) -> Option<R> + Sync,
        R: Send,
    {
        ParFilterMap {
            slice: self.slice,
            min_len: self.min_len,
            f,
        }
    }

    /// Parallel `map`; lazily evaluated, driven by `collect`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            min_len: self.min_len,
            f,
        }
    }

    /// Mirrors rayon's `map_init`: like `map`, but each worker first builds a
    /// scratch value with `init` and threads it through its items — the
    /// standard way to reuse a per-worker buffer instead of allocating per
    /// item.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'a, T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        R: Send,
    {
        ParMapInit {
            slice: self.slice,
            min_len: self.min_len,
            init,
            f,
        }
    }

    /// Parallel `for_each` over shared references.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let slice = self.slice;
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            slice.iter().for_each(f);
            return;
        }
        let f = &f;
        let jobs: Vec<pool::Job<'_>> = (0..w)
            .map(|i| {
                let piece = &slice[i * slice.len() / w..(i + 1) * slice.len() / w];
                Box::new(move || piece.iter().for_each(f)) as pool::Job<'_>
            })
            .collect();
        pool::run_jobs(jobs);
    }
}

/// Lazy parallel `filter_map` adaptor.
pub struct ParFilterMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T, R, F> ParFilterMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    /// Evaluates the pipeline and collects the results in input order. The
    /// output length is data-dependent, so each chunk filters into its own
    /// part vector and the parts are concatenated in chunk order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let slice = self.slice;
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            return slice.iter().filter_map(&self.f).collect();
        }
        let mut parts: Vec<Vec<R>> = Vec::new();
        parts.resize_with(w, Vec::new);
        let f = &self.f;
        let jobs: Vec<pool::Job<'_>> = parts
            .iter_mut()
            .enumerate()
            .map(|(i, part)| {
                let piece = &slice[i * slice.len() / w..(i + 1) * slice.len() / w];
                Box::new(move || *part = piece.iter().filter_map(f).collect()) as pool::Job<'_>
            })
            .collect();
        pool::run_jobs(jobs);
        parts.into_iter().flatten().collect()
    }
}

/// Lazy parallel `map` adaptor.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluates the pipeline and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let mut out = Vec::new();
        self.collect_into_vec(&mut out);
        out.into_iter().collect()
    }

    /// Mirrors rayon's `collect_into_vec`: evaluates the pipeline into a
    /// caller-provided vector (cleared first), in input order, **without**
    /// per-worker part vectors — each worker writes one contiguous window of
    /// the output's spare capacity, so a reused `out` makes repeated calls
    /// allocation-free once its capacity is warm. Same bounds as real rayon
    /// (no `R: Default` needed).
    pub fn collect_into_vec(self, out: &mut Vec<R>) {
        let slice = self.slice;
        out.clear();
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            out.extend(slice.iter().map(&self.f));
            return;
        }
        fill_spare_windows(slice, out, w, |piece_in, piece_out| {
            for (slot, x) in piece_out.iter_mut().zip(piece_in) {
                slot.write((self.f)(x));
            }
        });
    }
}

/// Lazy parallel `map_init` adaptor (per-worker scratch state).
pub struct ParMapInit<'a, T, INIT, F> {
    slice: &'a [T],
    min_len: usize,
    init: INIT,
    f: F,
}

impl<'a, T, S, R, INIT, F> ParMapInit<'a, T, INIT, F>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    /// Evaluates the pipeline and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let mut out = Vec::new();
        self.collect_into_vec(&mut out);
        out.into_iter().collect()
    }

    /// Mirrors rayon's `collect_into_vec` for `map_init` pipelines: evaluates
    /// into a caller-provided vector (cleared first), in input order, with one
    /// scratch per worker and **no** per-worker part vectors (see
    /// [`ParMap::collect_into_vec`]). Same bounds as real rayon (no
    /// `R: Default` needed).
    pub fn collect_into_vec(self, out: &mut Vec<R>) {
        let slice = self.slice;
        out.clear();
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            let mut scratch = (self.init)();
            out.extend(slice.iter().map(|x| (self.f)(&mut scratch, x)));
            return;
        }
        fill_spare_windows(slice, out, w, |piece_in, piece_out| {
            let mut scratch = (self.init)();
            for (slot, x) in piece_out.iter_mut().zip(piece_in) {
                slot.write((self.f)(&mut scratch, x));
            }
        });
    }
}

/// The shared backbone of the `collect_into_vec` implementations: splits
/// `slice` into `w` contiguous windows, carves matching output windows out of
/// `out`'s **spare capacity**, runs `work(input_window, output_window)` on the
/// pool, and commits the length once every window has completed. `work` must
/// initialise every slot of its output window exactly once.
///
/// Panic semantics: if any window's work panics, the panic propagates to the
/// caller and `out` keeps length 0 — slots already written in the spare
/// capacity are leaked (never dropped, never exposed), which is safe, and the
/// next successful call overwrites them.
fn fill_spare_windows<'a, T: Sync, R: Send>(
    slice: &'a [T],
    out: &mut Vec<R>,
    w: usize,
    work: impl Fn(&'a [T], &mut [MaybeUninit<R>]) + Sync,
) {
    let n = slice.len();
    out.reserve(n);
    let mut spare = &mut out.spare_capacity_mut()[..n];
    let work = &work;
    let mut jobs: Vec<pool::Job<'_>> = Vec::with_capacity(w);
    for i in 0..w {
        let lo = i * n / w;
        let hi = (i + 1) * n / w;
        let (piece_out, rest) = std::mem::take(&mut spare).split_at_mut(hi - lo);
        spare = rest;
        let piece_in = &slice[lo..hi];
        jobs.push(Box::new(move || work(piece_in, piece_out)));
    }
    pool::run_jobs(jobs);
    // SAFETY: `run_jobs` returned without unwinding, so every window's work
    // ran to completion, and the windows partition the first `n` spare slots —
    // each slot is initialised exactly once.
    #[allow(unsafe_code)]
    unsafe {
        out.set_len(n)
    };
}

/// Parallel mutable chunk iterator (the result of `par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Zips the chunks with a parallel shared-reference iterator, truncating to
    /// the shorter side (rayon semantics).
    pub fn zip<U: Sync>(self, other: ParIter<'a, U>) -> ParZipChunks<'a, T, U> {
        ParZipChunks {
            chunks: self.slice,
            size: self.size,
            other: other.slice,
        }
    }
}

/// Zip of mutable chunks with a shared slice.
pub struct ParZipChunks<'a, T, U> {
    chunks: &'a mut [T],
    size: usize,
    other: &'a [U],
}

impl<'a, T: Send, U: Sync> ParZipChunks<'a, T, U> {
    /// Applies `f` to every `(chunk, item)` pair, splitting the pairs across
    /// pool workers on chunk boundaries.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut [T], &'a U)) + Sync,
    {
        let size = self.size.max(1);
        let pairs = self.chunks.len().div_ceil(size).min(self.other.len());
        let elems = (pairs * size).min(self.chunks.len());
        let mut data = &mut self.chunks[..elems];
        let mut keys = &self.other[..pairs];

        let w = worker_count(pairs);
        if w <= 1 {
            for (chunk, key) in data.chunks_mut(size).zip(keys.iter()) {
                f((chunk, key));
            }
            return;
        }
        let f = &f;
        let mut jobs: Vec<pool::Job<'_>> = Vec::with_capacity(w);
        let mut done = 0usize;
        for i in 0..w {
            let hi = (i + 1) * pairs / w;
            let take = hi - done;
            done = hi;
            let split = (take * size).min(data.len());
            let (piece, rest) = std::mem::take(&mut data).split_at_mut(split);
            data = rest;
            let (piece_keys, rest_keys) = keys.split_at(take);
            keys = rest_keys;
            jobs.push(Box::new(move || {
                for (chunk, key) in piece.chunks_mut(size).zip(piece_keys.iter()) {
                    f((chunk, key));
                }
            }));
        }
        pool::run_jobs(jobs);
    }
}

/// Extension trait providing `par_iter` on slices (and through auto-deref, on
/// `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator of shared references.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter {
            slice: self,
            min_len: MIN_ITEMS_PER_WORKER,
        }
    }
}

/// Extension trait providing `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of mutable, `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { slice: self, size }
    }
}

/// The rayon prelude: the two slice extension traits.
pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// A 4-thread pool so the parallel paths genuinely split even on a
    /// single-core container.
    fn four() -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(4).build().unwrap()
    }

    #[test]
    fn filter_map_collect_matches_sequential_and_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let par: Vec<u64> = four().install(|| {
            xs.par_iter()
                .with_min_len(1)
                .filter_map(|&x| if x % 3 == 0 { Some(x * 2) } else { None })
                .collect()
        });
        let seq: Vec<u64> = xs
            .iter()
            .filter_map(|&x| if x % 3 == 0 { Some(x * 2) } else { None })
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn zip_chunks_matches_sequential() {
        let n = 5_000usize;
        let degree = 3usize;
        let keys: Vec<u64> = (0..n as u64).collect();
        let mut par = vec![0u32; n * degree];
        let mut seq = par.clone();
        four().install(|| {
            par.par_chunks_mut(degree)
                .zip(keys.par_iter())
                .for_each(|(chunk, &k)| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = (k as u32).wrapping_mul(31).wrapping_add(i as u32);
                    }
                })
        });
        for (chunk, &k) in seq.chunks_mut(degree).zip(keys.iter()) {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = (k as u32).wrapping_mul(31).wrapping_add(i as u32);
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let keys: Vec<u64> = (0..4).collect();
        let mut data = [0u32; 20];
        data.par_chunks_mut(2)
            .zip(keys.par_iter())
            .for_each(|(chunk, &k)| chunk.iter_mut().for_each(|s| *s = k as u32 + 1));
        // Only the first 4 chunks (8 elements) are touched.
        assert!(data[..8].iter().all(|&x| x > 0));
        assert!(data[8..].iter().all(|&x| x == 0));
    }

    #[test]
    fn with_min_len_lowers_the_sequential_cutoff() {
        // 8 items with default min_len stay sequential; with min_len 1 they
        // split across workers — results must be identical either way.
        let xs: Vec<u64> = (0..8).collect();
        let pool = four();
        let coarse: Vec<u64> =
            pool.install(|| xs.par_iter().with_min_len(1).map(|&x| x * 3).collect());
        let fine: Vec<u64> = xs.par_iter().map(|&x| x * 3).collect();
        assert_eq!(coarse, fine);
        let mut seen = 0u64;
        let sum = std::sync::Mutex::new(&mut seen);
        pool.install(|| {
            xs.par_iter().with_min_len(2).for_each(|&x| {
                **sum.lock().unwrap() += x;
            })
        });
        assert_eq!(seen, 28);
    }

    #[test]
    fn collect_into_vec_matches_collect_and_reuses_capacity() {
        let xs: Vec<u64> = (0..10_000).collect();
        let pool = four();
        let via_collect: Vec<u64> =
            pool.install(|| xs.par_iter().with_min_len(1).map(|&x| x * 7 + 1).collect());
        let mut out = Vec::new();
        pool.install(|| {
            xs.par_iter()
                .with_min_len(1)
                .map(|&x| x * 7 + 1)
                .collect_into_vec(&mut out)
        });
        assert_eq!(out, via_collect);
        // A second call reuses the buffer: same results, capacity retained.
        let cap = out.capacity();
        pool.install(|| {
            xs.par_iter()
                .with_min_len(1)
                .map_init(|| 0u64, |_, &x| x * 7 + 1)
                .collect_into_vec(&mut out)
        });
        assert_eq!(out, via_collect);
        assert_eq!(out.capacity(), cap);
        // Sequential cutoff path (default min_len keeps 8 items on 1 worker).
        let small: Vec<u64> = (0..8).collect();
        small.par_iter().map(|&x| x + 1).collect_into_vec(&mut out);
        assert_eq!(out, (1..=8).collect::<Vec<u64>>());
        // Empty input clears the output.
        let empty: Vec<u64> = Vec::new();
        empty.par_iter().map(|&x| x).collect_into_vec(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn collect_into_vec_works_for_non_default_types() {
        // The output type has no Default and a non-trivial drop — the spare-
        // capacity windows must still assemble it in input order.
        let xs: Vec<u64> = (0..4_096).collect();
        let mut out: Vec<Box<u64>> = Vec::new();
        four().install(|| {
            xs.par_iter()
                .with_min_len(1)
                .map(|&x| Box::new(x * 3))
                .collect_into_vec(&mut out)
        });
        assert_eq!(out.len(), xs.len());
        assert!(out.iter().zip(&xs).all(|(b, &x)| **b == x * 3));
    }

    #[test]
    fn map_init_reuses_scratch_and_matches_map() {
        let xs: Vec<u64> = (0..5000).collect();
        let via_map: Vec<u64> = xs.par_iter().map(|&x| x + 1).collect();
        let via_init: Vec<u64> = four().install(|| {
            xs.par_iter()
                .with_min_len(1)
                .map_init(Vec::<u64>::new, |scratch, &x| {
                    scratch.push(x); // scratch persists across a worker's items
                    x + 1
                })
                .collect()
        });
        assert_eq!(via_map, via_init);
    }

    #[test]
    fn thread_pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn worker_panic_propagates_and_does_not_poison_the_pool() {
        let pool = four();
        let xs: Vec<u64> = (0..1_000).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                xs.par_iter().with_min_len(1).for_each(|&x| {
                    if x == 997 {
                        panic!("boom at {x}");
                    }
                })
            })
        }));
        let payload = caught.expect_err("the worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
        // The same pool keeps working after the panic (workers survived).
        let sum: u64 = pool
            .install(|| {
                xs.par_iter()
                    .with_min_len(1)
                    .map(|&x| x)
                    .collect::<Vec<u64>>()
            })
            .iter()
            .sum();
        assert_eq!(sum, 1000 * 999 / 2);
    }

    #[test]
    fn caller_chunk_panic_still_waits_for_workers() {
        // The caller runs the first chunk; a panic there must not unwind past
        // the workers still borrowing the slice. Observable effect: by the
        // time the panic reaches us, every element of every *worker* chunk
        // (the last three quarters of the input under w = 4) is processed —
        // the wait-on-drop guard held the frame open until the workers were
        // done with it.
        use std::sync::atomic::{AtomicBool, Ordering};
        let pool = four();
        let xs: Vec<u64> = (0..1_000).collect();
        let processed: Vec<AtomicBool> = (0..xs.len()).map(|_| AtomicBool::new(false)).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                xs.par_iter().with_min_len(1).for_each(|&x| {
                    if x == 0 {
                        panic!("caller chunk");
                    }
                    processed[x as usize].store(true, Ordering::Relaxed);
                })
            })
        }));
        assert!(caught.is_err());
        assert!(
            processed[250..].iter().all(|p| p.load(Ordering::Relaxed)),
            "worker chunks must complete before the caller's panic escapes"
        );
    }

    #[test]
    fn nested_par_iter_inside_a_pool_task_runs_inline() {
        // A parallel operation from inside a pool task must not deadlock on
        // the task queue; it falls back to inline execution on its worker.
        let pool = four();
        let outer: Vec<u64> = (0..64).collect();
        let totals: Vec<u64> = pool.install(|| {
            outer
                .par_iter()
                .with_min_len(1)
                .map(|&x| {
                    let inner: Vec<u64> = (0..x + 1).collect();
                    let s = std::sync::atomic::AtomicU64::new(0);
                    inner.par_iter().with_min_len(1).for_each(|&y| {
                        s.fetch_add(y, std::sync::atomic::Ordering::Relaxed);
                    });
                    s.into_inner()
                })
                .collect()
        });
        let expected: Vec<u64> = outer.iter().map(|&x| x * (x + 1) / 2).collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn pools_drop_and_reinit_with_different_thread_counts() {
        // Build, use and tear down pools of several sizes in sequence; each
        // drop joins its workers, so no threads leak across iterations and the
        // results stay identical under every count.
        let xs: Vec<u64> = (0..4_096).collect();
        let expected: Vec<u64> = xs.iter().map(|&x| x ^ 0xabcd).collect();
        for threads in [1usize, 2, 4, 8, 2] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> =
                pool.install(|| xs.par_iter().with_min_len(1).map(|&x| x ^ 0xabcd).collect());
            assert_eq!(got, expected, "threads = {threads}");
            drop(pool);
        }
    }

    #[test]
    fn uneven_chunks_rebalance_by_stealing() {
        // One slow chunk must not serialize the batch: the slow worker's
        // remaining queued chunks get stolen by idle threads (or by the
        // caller's help loop) while it sleeps. 16 single-item chunks over
        // 3 worker deques leave the sleeper holding 4 queued chunks that
        // only theft can finish within the sleep window.
        let pool = four();
        let before = pool.steal_count();
        let xs: Vec<u64> = (0..16).collect();
        let total = std::sync::atomic::AtomicU64::new(0);
        pool.install(|| {
            xs.par_iter().with_min_len(1).for_each(|&x| {
                if x == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                total.fetch_add(x + 1, std::sync::atomic::Ordering::Relaxed);
            })
        });
        assert_eq!(total.into_inner(), 16 * 17 / 2);
        assert!(
            pool.steal_count() > before,
            "no chunk was stolen off the sleeping worker's deque"
        );
    }

    #[test]
    fn empty_inputs() {
        let xs: Vec<u64> = vec![];
        let out: Vec<u64> = xs.par_iter().filter_map(|&x| Some(x)).collect();
        assert!(out.is_empty());
        let mut data: Vec<u32> = vec![];
        data.par_chunks_mut(4).zip(xs.par_iter()).for_each(|_| {});
    }
}
