//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no crates.io access, so this local crate provides
//! the same names (`prelude::*`, `par_iter`, `par_chunks_mut`, `zip`,
//! `filter_map`, `for_each`, `collect`, `ThreadPoolBuilder`) with a real
//! data-parallel implementation on top of `std::thread::scope`: inputs are cut
//! into one contiguous piece per worker, workers run on scoped OS threads, and
//! results are re-assembled in input order, so every operation is deterministic
//! and produces exactly what the sequential execution would.
//!
//! Differences from real rayon: there is no global work-stealing pool (threads
//! are spawned per call, amortised by a minimum sequential cutoff), and only
//! the combinators this workspace needs are provided.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Below this many items per prospective worker, run sequentially: spawning OS
/// threads costs more than the work saves.
const MIN_ITEMS_PER_WORKER: usize = 1024;

/// Number of worker threads the current scope would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn worker_count(items: usize) -> usize {
    worker_count_min(items, MIN_ITEMS_PER_WORKER)
}

fn worker_count_min(items: usize, min_len: usize) -> usize {
    current_num_threads().min(items / min_len.max(1)).max(1)
}

/// Error type of [`ThreadPoolBuilder::build`] (this shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 = number of cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A "pool" that scopes the worker-thread count of parallel operations run
/// under [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing all parallel
    /// operations invoked from the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|c| {
            let prev = c.replace(Some(self.threads));
            let out = op();
            c.set(prev);
            out
        })
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Parallel shared-reference iterator over a slice (the result of `par_iter`).
pub struct ParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Mirrors rayon's `with_min_len`: guarantees every worker gets at least
    /// `min` items, i.e. lowers (or raises) the sequential cutoff. Use a small
    /// `min` for coarse items whose per-item work is large.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Parallel `filter_map`; lazily evaluated, driven by `collect`.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        F: Fn(&'a T) -> Option<R> + Sync,
        R: Send,
    {
        ParFilterMap {
            slice: self.slice,
            min_len: self.min_len,
            f,
        }
    }

    /// Parallel `map`; lazily evaluated, driven by `collect`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            min_len: self.min_len,
            f,
        }
    }

    /// Mirrors rayon's `map_init`: like `map`, but each worker first builds a
    /// scratch value with `init` and threads it through its items — the
    /// standard way to reuse a per-worker buffer instead of allocating per
    /// item.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'a, T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        R: Send,
    {
        ParMapInit {
            slice: self.slice,
            min_len: self.min_len,
            init,
            f,
        }
    }

    /// Parallel `for_each` over shared references.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let slice = self.slice;
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            slice.iter().for_each(f);
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            for i in 0..w {
                let piece = &slice[i * slice.len() / w..(i + 1) * slice.len() / w];
                scope.spawn(move || piece.iter().for_each(f));
            }
        });
    }
}

/// Lazy parallel `filter_map` adaptor.
pub struct ParFilterMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T, R, F> ParFilterMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    /// Evaluates the pipeline and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let slice = self.slice;
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            return slice.iter().filter_map(&self.f).collect();
        }
        let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
            let f = &self.f;
            let handles: Vec<_> = (0..w)
                .map(|i| {
                    let piece = &slice[i * slice.len() / w..(i + 1) * slice.len() / w];
                    scope.spawn(move || piece.iter().filter_map(f).collect::<Vec<R>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        parts.into_iter().flatten().collect()
    }
}

/// Lazy parallel `map` adaptor.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluates the pipeline and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let slice = self.slice;
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            return slice.iter().map(&self.f).collect();
        }
        let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
            let f = &self.f;
            let handles: Vec<_> = (0..w)
                .map(|i| {
                    let piece = &slice[i * slice.len() / w..(i + 1) * slice.len() / w];
                    scope.spawn(move || piece.iter().map(f).collect::<Vec<R>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        parts.into_iter().flatten().collect()
    }

    /// Mirrors rayon's `collect_into_vec`: evaluates the pipeline into a
    /// caller-provided vector (cleared first), in input order, **without**
    /// per-worker part vectors — the output is sized once and split into one
    /// contiguous window per worker, so a reused `out` makes repeated calls
    /// allocation-free once its capacity is warm. Divergence from real rayon:
    /// pre-sizing the output without `unsafe` needs `R: Default`.
    pub fn collect_into_vec(self, out: &mut Vec<R>)
    where
        R: Default,
    {
        let slice = self.slice;
        out.clear();
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            out.extend(slice.iter().map(&self.f));
            return;
        }
        out.resize_with(slice.len(), R::default);
        run_into_windows(slice, out, w, |piece_in, piece_out| {
            for (slot, x) in piece_out.iter_mut().zip(piece_in) {
                *slot = (self.f)(x);
            }
        });
    }
}

/// Lazy parallel `map_init` adaptor (per-worker scratch state).
pub struct ParMapInit<'a, T, INIT, F> {
    slice: &'a [T],
    min_len: usize,
    init: INIT,
    f: F,
}

impl<'a, T, S, R, INIT, F> ParMapInit<'a, T, INIT, F>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    /// Evaluates the pipeline and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let slice = self.slice;
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            let mut scratch = (self.init)();
            return slice.iter().map(|x| (self.f)(&mut scratch, x)).collect();
        }
        let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
            let f = &self.f;
            let init = &self.init;
            let handles: Vec<_> = (0..w)
                .map(|i| {
                    let piece = &slice[i * slice.len() / w..(i + 1) * slice.len() / w];
                    scope.spawn(move || {
                        let mut scratch = init();
                        piece.iter().map(|x| f(&mut scratch, x)).collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        parts.into_iter().flatten().collect()
    }

    /// Mirrors rayon's `collect_into_vec` for `map_init` pipelines: evaluates
    /// into a caller-provided vector (cleared first), in input order, with one
    /// scratch per worker and **no** per-worker part vectors (see
    /// [`ParMap::collect_into_vec`]). Divergence from real rayon: pre-sizing
    /// the output without `unsafe` needs `R: Default`.
    pub fn collect_into_vec(self, out: &mut Vec<R>)
    where
        R: Default,
    {
        let slice = self.slice;
        out.clear();
        let w = worker_count_min(slice.len(), self.min_len);
        if w <= 1 {
            let mut scratch = (self.init)();
            out.extend(slice.iter().map(|x| (self.f)(&mut scratch, x)));
            return;
        }
        out.resize_with(slice.len(), R::default);
        run_into_windows(slice, out, w, |piece_in, piece_out| {
            let mut scratch = (self.init)();
            for (slot, x) in piece_out.iter_mut().zip(piece_in) {
                *slot = (self.f)(&mut scratch, x);
            }
        });
    }
}

/// Splits `slice` and `out` (which must have equal lengths) into `w` aligned
/// contiguous windows and runs `work(input_window, output_window)` on one
/// scoped thread per window — the shared backbone of the `collect_into_vec`
/// implementations.
fn run_into_windows<'a, T: Sync, R: Send>(
    slice: &'a [T],
    out: &mut [R],
    w: usize,
    work: impl Fn(&'a [T], &mut [R]) + Sync,
) {
    debug_assert_eq!(slice.len(), out.len());
    let mut rest = out;
    std::thread::scope(|scope| {
        let work = &work;
        for i in 0..w {
            let lo = i * slice.len() / w;
            let hi = (i + 1) * slice.len() / w;
            let (piece_out, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
            rest = tail;
            let piece_in = &slice[lo..hi];
            scope.spawn(move || work(piece_in, piece_out));
        }
    });
}

/// Parallel mutable chunk iterator (the result of `par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Zips the chunks with a parallel shared-reference iterator, truncating to
    /// the shorter side (rayon semantics).
    pub fn zip<U: Sync>(self, other: ParIter<'a, U>) -> ParZipChunks<'a, T, U> {
        ParZipChunks {
            chunks: self.slice,
            size: self.size,
            other: other.slice,
        }
    }
}

/// Zip of mutable chunks with a shared slice.
pub struct ParZipChunks<'a, T, U> {
    chunks: &'a mut [T],
    size: usize,
    other: &'a [U],
}

impl<'a, T: Send, U: Sync> ParZipChunks<'a, T, U> {
    /// Applies `f` to every `(chunk, item)` pair, splitting the pairs across
    /// worker threads on chunk boundaries.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut [T], &'a U)) + Sync,
    {
        let size = self.size.max(1);
        let pairs = self.chunks.len().div_ceil(size).min(self.other.len());
        let elems = (pairs * size).min(self.chunks.len());
        let mut data = &mut self.chunks[..elems];
        let mut keys = &self.other[..pairs];

        let w = worker_count(pairs);
        if w <= 1 {
            for (chunk, key) in data.chunks_mut(size).zip(keys.iter()) {
                f((chunk, key));
            }
            return;
        }
        let mut jobs = Vec::with_capacity(w);
        let mut done = 0usize;
        for i in 0..w {
            let hi = (i + 1) * pairs / w;
            let take = hi - done;
            done = hi;
            let split = (take * size).min(data.len());
            let (piece, rest) = std::mem::take(&mut data).split_at_mut(split);
            data = rest;
            let (piece_keys, rest_keys) = keys.split_at(take);
            keys = rest_keys;
            jobs.push((piece, piece_keys));
        }
        std::thread::scope(|scope| {
            let f = &f;
            for (piece, piece_keys) in jobs {
                scope.spawn(move || {
                    for (chunk, key) in piece.chunks_mut(size).zip(piece_keys.iter()) {
                        f((chunk, key));
                    }
                });
            }
        });
    }
}

/// Extension trait providing `par_iter` on slices (and through auto-deref, on
/// `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator of shared references.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter {
            slice: self,
            min_len: MIN_ITEMS_PER_WORKER,
        }
    }
}

/// Extension trait providing `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of mutable, `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { slice: self, size }
    }
}

/// The rayon prelude: the two slice extension traits.
pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn filter_map_collect_matches_sequential_and_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let par: Vec<u64> = xs
            .par_iter()
            .filter_map(|&x| if x % 3 == 0 { Some(x * 2) } else { None })
            .collect();
        let seq: Vec<u64> = xs
            .iter()
            .filter_map(|&x| if x % 3 == 0 { Some(x * 2) } else { None })
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn zip_chunks_matches_sequential() {
        let n = 5_000usize;
        let degree = 3usize;
        let keys: Vec<u64> = (0..n as u64).collect();
        let mut par = vec![0u32; n * degree];
        let mut seq = par.clone();
        par.par_chunks_mut(degree)
            .zip(keys.par_iter())
            .for_each(|(chunk, &k)| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (k as u32).wrapping_mul(31).wrapping_add(i as u32);
                }
            });
        for (chunk, &k) in seq.chunks_mut(degree).zip(keys.iter()) {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = (k as u32).wrapping_mul(31).wrapping_add(i as u32);
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let keys: Vec<u64> = (0..4).collect();
        let mut data = [0u32; 20];
        data.par_chunks_mut(2)
            .zip(keys.par_iter())
            .for_each(|(chunk, &k)| chunk.iter_mut().for_each(|s| *s = k as u32 + 1));
        // Only the first 4 chunks (8 elements) are touched.
        assert!(data[..8].iter().all(|&x| x > 0));
        assert!(data[8..].iter().all(|&x| x == 0));
    }

    #[test]
    fn with_min_len_lowers_the_sequential_cutoff() {
        // 8 items with default min_len stay sequential; with min_len 1 they
        // split across workers — results must be identical either way.
        let xs: Vec<u64> = (0..8).collect();
        let coarse: Vec<u64> = xs.par_iter().with_min_len(1).map(|&x| x * 3).collect();
        let fine: Vec<u64> = xs.par_iter().map(|&x| x * 3).collect();
        assert_eq!(coarse, fine);
        let mut seen = 0u64;
        let sum = std::sync::Mutex::new(&mut seen);
        xs.par_iter().with_min_len(2).for_each(|&x| {
            **sum.lock().unwrap() += x;
        });
        assert_eq!(seen, 28);
    }

    #[test]
    fn collect_into_vec_matches_collect_and_reuses_capacity() {
        let xs: Vec<u64> = (0..10_000).collect();
        let via_collect: Vec<u64> = xs.par_iter().with_min_len(1).map(|&x| x * 7 + 1).collect();
        let mut out = Vec::new();
        xs.par_iter()
            .with_min_len(1)
            .map(|&x| x * 7 + 1)
            .collect_into_vec(&mut out);
        assert_eq!(out, via_collect);
        // A second call reuses the buffer: same results, capacity retained.
        let cap = out.capacity();
        xs.par_iter()
            .with_min_len(1)
            .map_init(|| 0u64, |_, &x| x * 7 + 1)
            .collect_into_vec(&mut out);
        assert_eq!(out, via_collect);
        assert_eq!(out.capacity(), cap);
        // Sequential cutoff path (default min_len keeps 8 items on 1 worker).
        let small: Vec<u64> = (0..8).collect();
        small.par_iter().map(|&x| x + 1).collect_into_vec(&mut out);
        assert_eq!(out, (1..=8).collect::<Vec<u64>>());
        // Empty input clears the output.
        let empty: Vec<u64> = Vec::new();
        empty.par_iter().map(|&x| x).collect_into_vec(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn map_init_reuses_scratch_and_matches_map() {
        let xs: Vec<u64> = (0..5000).collect();
        let via_map: Vec<u64> = xs.par_iter().map(|&x| x + 1).collect();
        let via_init: Vec<u64> = xs
            .par_iter()
            .with_min_len(1)
            .map_init(Vec::<u64>::new, |scratch, &x| {
                scratch.push(x); // scratch persists across a worker's items
                x + 1
            })
            .collect();
        assert_eq!(via_map, via_init);
    }

    #[test]
    fn thread_pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn empty_inputs() {
        let xs: Vec<u64> = vec![];
        let out: Vec<u64> = xs.par_iter().filter_map(|&x| Some(x)).collect();
        assert!(out.is_empty());
        let mut data: Vec<u32> = vec![];
        data.par_chunks_mut(4).zip(xs.par_iter()).for_each(|_| {});
    }
}
