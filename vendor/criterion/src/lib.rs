//! Offline stand-in for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no crates.io access, so this local crate provides
//! `Criterion`, `BenchmarkId`, benchmark groups and the `criterion_group!` /
//! `criterion_main!` macros with a deliberately simple measurement loop: each
//! benchmark closure is warmed up once and then timed over a fixed number of
//! iterations, and the mean wall-clock time is printed. No statistics, plots
//! or baselines — just enough to keep `cargo bench` runnable and useful for
//! spotting order-of-magnitude regressions.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier of a parameterised benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations (after one warm-up call).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim uses its own iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Entry point of the harness; mirrors `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Overridable so CI can keep bench runs cheap.
        let iters = std::env::var("CRITERION_SHIM_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        Self {
            iters: iters.max(1),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.run_one(&label, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        println!("bench {label:<60} {:>12.3} ms/iter", mean * 1e3);
    }
}

/// Mirrors `criterion_group!`: bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_closures() {
        let mut c = Criterion { iters: 2 };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // One warm-up + two timed iterations.
        assert_eq!(calls, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { iters: 1 };
        let mut seen = 0u64;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| b.iter(|| seen = x));
        g.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("alloc", 42).to_string(), "alloc/42");
    }
}
