//! Offline stand-in for the subset of the `crossbeam` API this workspace uses:
//! `channel::unbounded` and `thread::scope`/`spawn`/`join`.
//!
//! The build environment has no crates.io access, so this local crate maps the
//! crossbeam names onto the standard library: channels are `std::sync::mpsc`
//! and scoped threads are `std::thread::scope`. Semantics relevant to this
//! workspace are identical (unbounded FIFO channels whose `recv` fails once
//! every sender is dropped; scoped threads joined before `scope` returns).

#![forbid(unsafe_code)]

/// Unbounded MPSC channels with the crossbeam names.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Receiving half of an unbounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads with the crossbeam calling convention (the spawned closure
/// receives a `&Scope` argument).
pub mod thread {
    use std::thread as stdthread;

    /// A scope handle; spawned closures receive a reference to it.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the scope so
        /// it can spawn further threads (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all of
    /// them are joined before this returns. Matches crossbeam's `Result`-shaped
    /// signature (this shim always returns `Ok`; panics propagate as panics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(
            rx.recv().is_err(),
            "recv must fail once all senders dropped"
        );
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("no panics");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let out = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
