//! Offline stand-in for the subset of the `crossbeam` API this workspace uses:
//! `channel::unbounded` and `thread::scope`/`spawn`/`join`.
//!
//! The build environment has no crates.io access, so this local crate provides
//! the crossbeam names on top of the standard library: channels are a small
//! `Mutex<VecDeque>` + `Condvar` implementation with real crossbeam semantics
//! — **both halves clone**, so many receivers can share one queue (the MPMC
//! shape the persistent worker pool in `vendor/rayon` parks on), `recv` fails
//! once every sender is dropped and the queue is empty, and `send` fails once
//! every receiver is dropped. Scoped threads are `std::thread::scope`.

#![forbid(unsafe_code)]

/// Unbounded MPMC channels with the crossbeam names and semantics.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error of [`Receiver::recv`]: the channel is empty and every sender is
    /// gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error of [`Sender::send`]: every receiver is gone. Carries the
    /// unsent message back to the caller.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like std's mpsc::SendError: Debug without a `T: Debug` bound, so
    // `send(...).expect(...)` works for any payload.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still produce).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Empty => f.write_str("receiving on an empty channel"),
                Self::Disconnected => f.write_str("receiving on an empty and disconnected channel"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Core<T> {
        state: Mutex<State<T>>,
        /// Signalled on every send and on the last sender's drop (so blocked
        /// receivers observe disconnection).
        ready: Condvar,
    }

    /// Sending half of an unbounded channel. Cloning adds a sender.
    pub struct Sender<T> {
        core: Arc<Core<T>>,
    }

    /// Receiving half of an unbounded channel. Cloning adds a receiver that
    /// competes for the same queue (crossbeam MPMC semantics: every message
    /// is delivered to exactly one receiver).
    pub struct Receiver<T> {
        core: Arc<Core<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails (returning the value) once every receiver
        /// is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.core.state.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.core.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.core.state.lock().expect("channel lock").senders += 1;
            Self {
                core: Arc::clone(&self.core),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.core.state.lock().expect("channel lock");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.core.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is dropped
        /// (and the queue is drained).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.core.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.core.ready.wait(state).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.core.state.lock().expect("channel lock");
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.core.state.lock().expect("channel lock").receivers += 1;
            Self {
                core: Arc::clone(&self.core),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.core.state.lock().expect("channel lock").receivers -= 1;
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let core = Arc::new(Core {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                core: Arc::clone(&core),
            },
            Receiver { core },
        )
    }
}

/// Scoped threads with the crossbeam calling convention (the spawned closure
/// receives a `&Scope` argument).
pub mod thread {
    use std::thread as stdthread;

    /// A scope handle; spawned closures receive a reference to it.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the scope so
        /// it can spawn further threads (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all of
    /// them are joined before this returns. Matches crossbeam's `Result`-shaped
    /// signature (this shim always returns `Ok`; panics propagate as panics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(
            rx.recv().is_err(),
            "recv must fail once all senders dropped"
        );
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("no panics");
        assert_eq!(total, 10);
    }

    #[test]
    fn cloned_receivers_compete_for_the_same_queue() {
        // MPMC: every message goes to exactly one receiver, and the union of
        // what the receivers saw is the sent set.
        let (tx, rx) = channel::unbounded::<u32>();
        let rx2 = rx.clone();
        for v in 0..100 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let (a, b) = thread::scope(|s| {
            let h1 = s.spawn(|_| {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let h2 = s.spawn(|_| {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        let mut all: Vec<u32> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn send_fails_once_every_receiver_is_gone() {
        let (tx, rx) = channel::unbounded::<u32>();
        let rx2 = rx.clone();
        drop(rx);
        assert!(tx.send(1).is_ok(), "one receiver still alive");
        drop(rx2);
        assert_eq!(tx.send(2), Err(channel::SendError(2)));
    }

    #[test]
    fn try_recv_reports_empty_vs_disconnected() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let out = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
