//! The full observability stack, end to end **over a real socket**: a
//! metrics-instrumented `ConcurrentRouter` behind the TCP line-protocol
//! front-end, loopback clients driving it, and a `MetricsRegistry` snapshot
//! proving nothing was dropped silently.
//!
//! The run:
//!
//! 1. builds a router with a shared `MetricsRegistry` installed and starts a
//!    `SocketServer` on a free loopback port;
//! 2. spawns client threads, each a `LineClient` routing keyed requests and
//!    releasing a sliding window of open connections — plus some deliberate
//!    protocol abuse (forged release ids, malformed lines) that must surface
//!    in `server.unknown_ticket` / `server.bad_request`, never vanish;
//! 3. flushes, snapshots the registry, and asserts the books balance:
//!    `route.routed − route.released == resident`, per-bin commit counters
//!    sum to the placed total, and the route-latency histogram saw every
//!    request.
//!
//! Run with: `cargo run --release --example socket_server`

use std::sync::Arc;

use parallel_balanced_allocations::obs::{MetricSink, MetricsRegistry, StderrSink};
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::Policy;

fn main() {
    let n = 32usize; // backends
    let clients = 4usize; // loopback client threads
    let requests = 2_000u64; // per client
    let window = 64usize; // open connections per client
    let batch = 256usize;

    let registry = Arc::new(MetricsRegistry::new());
    let router = ConcurrentRouter::with_metrics(
        StreamConfig::new(n)
            .policy(Policy::TwoChoice)
            .batch_size(batch)
            .shards(4)
            .seed(42),
        Arc::clone(&registry),
    );
    let server = SocketServer::start(router, ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    println!("== socket_server ==");
    println!(
        "{n} backends behind {addr}, {clients} clients x {requests} requests, \
         window {window}, batch {batch}"
    );

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..clients {
            scope.spawn(move || {
                let mut client = LineClient::connect(addr).expect("connect loopback");
                let mut open = std::collections::VecDeque::with_capacity(window);
                for i in 0..requests {
                    let key = (t as u64) << 32 | i;
                    let (_bin, id) = client.route(key).expect("route over tcp");
                    open.push_back(id);
                    if open.len() > window {
                        let oldest = open.pop_front().expect("window non-empty");
                        assert!(
                            client.release(oldest).expect("release over tcp").is_some(),
                            "an issued id releases exactly once"
                        );
                    }
                }
                // Protocol abuse — must be counted, never silently dropped.
                assert_eq!(client.release(u64::MAX - t as u64).unwrap(), None);
                assert_eq!(client.request("GARBAGE").unwrap(), "ERR bad-request");
                // Close the window out.
                for id in open {
                    assert!(client.release(id).unwrap().is_some());
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut client = LineClient::connect(addr).expect("connect for flush");
    client.flush().expect("flush over tcp");
    let total = clients as u64 * requests;
    println!(
        "served {} requests in {:.2}s ({:.0} req/s wall; 1-core containers \
         serialise the threads, so treat throughput as a smoke number)",
        2 * total,
        elapsed,
        2.0 * total as f64 / elapsed
    );

    assert!(
        server.router().conserves_balls(),
        "conservation at shutdown"
    );
    assert_eq!(server.router().resident(), 0, "all connections closed");
    server.shutdown();

    let snap = registry.snapshot();
    // The no-silent-drops ledger balances.
    assert_eq!(snap.counter("route.routed"), total);
    assert_eq!(snap.counter("route.released"), total);
    assert_eq!(snap.counter("server.unknown_ticket"), clients as u64);
    assert_eq!(snap.counter("server.bad_request"), clients as u64);
    assert_eq!(snap.counter("server.connections"), clients as u64 + 1);
    // Per-bin commits sum to the placed total (conservation, per backend).
    let commits: u64 = snap
        .counter_vecs
        .get("route.bin_commits")
        .expect("per-bin commit family")
        .iter()
        .sum();
    assert_eq!(commits, snap.counter("route.placed"));
    // The latency histogram saw every routed request.
    let latency = snap
        .histogram("server.route_latency_ns")
        .expect("latency recorded");
    assert_eq!(latency.count, total, "nonzero histogram covers every route");
    assert!(latency.p99 >= latency.p50 && latency.p50 > 0);
    println!(
        "route latency over tcp: p50 {:.1}us p90 {:.1}us p99 {:.1}us ({} samples)",
        latency.p50 as f64 / 1e3,
        latency.p90 as f64 / 1e3,
        latency.p99 as f64 / 1e3,
        latency.count
    );
    println!(
        "batches {} gap {:.2} | unknown-ticket {} bad-request {} (all abuse accounted)",
        snap.counter("router.stream_batches"),
        snap.gauge("router.stream_gap"),
        snap.counter("server.unknown_ticket"),
        snap.counter("server.bad_request"),
    );

    // Ship the final snapshot through a sink, the way a deployment would.
    StderrSink.emit(&snap).expect("stderr sink never fails");
}
