//! The replay & fault-injection harness, end to end: **record → encode →
//! replay everywhere → inject faults**.
//!
//! A churn workload (uniform arrivals, ticket releases after warm-up) is
//! frozen into a portable text trace, round-tripped through the codec
//! byte-identically, and replayed on three engines: the classic
//! `StreamAllocator`, a 1-caller `ConcurrentRouter` (bit-identical by
//! contract — the example asserts placements, loads and gap trajectories all
//! agree), and a 4-caller concurrent replay (schedule-dependent placements,
//! same conservation guarantees). Then the whole fault catalogue runs
//! against the trace: a mid-batch bin crash, a delayed and a duplicated
//! release, a reversed arrival window, observer poisoning and backpressure —
//! each must fire its named `fault.*` counter while conservation and the
//! ticket ledger stay intact.
//!
//! Run with: `cargo run --release --example replay_faults`

use parallel_balanced_allocations::replay::{
    churn_trace, inject_ingress_reorder, replay::replay, Fault, FaultPlan, ReplayConfig, Trace,
};
use parallel_balanced_allocations::stream::{Policy, StreamConfig};

fn main() {
    // 1. Freeze a live workload into a trace.
    let config = StreamConfig::new(32).batch_size(32).seed(18);
    let trace = churn_trace(config, 60, 8, 0.4, 15);
    let text = trace.encode();
    println!(
        "recorded trace '{}': {} arrivals over {} bins (batch {}), {} bytes of text",
        trace.name,
        trace.arrivals(),
        trace.bins,
        trace.batch_size,
        text.len()
    );
    let decoded = Trace::decode(&text).expect("own encoding decodes");
    assert_eq!(decoded.encode(), text, "codec is byte-identity");
    println!("codec round trip: byte-identical\n");

    // 2. Replay it on every engine.
    let stream = replay(&trace, &ReplayConfig::stream(Policy::TwoChoice)).unwrap();
    let concurrent1 = replay(&trace, &ReplayConfig::concurrent(Policy::TwoChoice, 1)).unwrap();
    assert_eq!(stream.placements, concurrent1.placements);
    assert_eq!(stream.loads, concurrent1.loads);
    assert_eq!(stream.gap_trajectory, concurrent1.gap_trajectory);
    println!(
        "stream ≡ concurrent(1): {} placements, {} batches, final gap {:.3} — bit-identical",
        stream.placements.len(),
        stream.batches,
        stream.final_gap
    );
    let concurrent4 = replay(&trace, &ReplayConfig::concurrent(Policy::TwoChoice, 4)).unwrap();
    assert!(concurrent4.conserved);
    println!(
        "concurrent(4): schedule-dependent placements, final gap {:.3}, conserved: {}\n",
        concurrent4.final_gap, concurrent4.conserved
    );

    // 3. Run the fault catalogue. Release-directed faults must target balls
    //    the trace actually releases.
    let m = trace.arrivals();
    let scripted = trace.scripted_releases();
    let faults = [
        Fault::CrashBin {
            after_arrival: m / 2,
            bin: 3,
        },
        Fault::DelayRelease {
            arrival: scripted[0],
            until: m - 2,
        },
        Fault::DuplicateRelease {
            arrival: scripted[1],
        },
        Fault::ReorderWindow {
            start: m / 3,
            len: 32,
        },
        Fault::PoisonObserver {
            after_arrival: m / 2,
        },
        Fault::Backpressure { capacity: 16 },
    ];
    println!("fault catalogue over the same trace:");
    for fault in faults {
        let run = FaultPlan::single(fault).run(&trace, Policy::TwoChoice);
        assert!(
            run.all_passed(),
            "fault {} broke an invariant",
            fault.name()
        );
        assert!(run.outcome.conserved);
        let fired = run.registry.snapshot().counter(fault.counter());
        assert!(fired > 0, "fault {} must fire its counter", fault.name());
        println!(
            "  {:<20} {:<28} fired {:>5}×   gap {:.3}   conserved: yes   invariants: ok",
            fault.name(),
            fault.counter(),
            fired,
            run.outcome.final_gap
        );
    }
    let (check, late) = inject_ingress_reorder(&trace, Policy::TwoChoice, 8);
    assert!(check.passed());
    println!(
        "  {:<20} {:<28} fired {:>5}×   {} counted late at the ingress",
        "reordered-ingress", check.counter, check.fired, late
    );
    println!("\nevery fault fired its counter; conservation and the ledger held throughout");
}
