//! The unified Router API, end to end: **route → observe → runtime reweight →
//! release**.
//!
//! A heterogeneous fleet (4:2:1 capacity tiers) serves keyed traffic through
//! the streaming engine behind the `Router` interface. Mid-run, the fleet is
//! re-provisioned **while serving**: `set_weights` flips the capacity mix to
//! 1:1:4 and the engine applies it at the next batch boundary — a
//! `ReweightLog` observer records exactly which one. Connections then start
//! closing: tickets issued at route time are released back, with validation
//! (a double release is rejected, not silently absorbed).
//!
//! The same `drive` function also runs the one-shot `A_heavy` allocator
//! through `OneShotRouter` — one interface, both engine families.
//!
//! Run with: `cargo run --release --example router_lifecycle`

use std::sync::{Arc, Mutex};

use parallel_balanced_allocations::model::SplitMix64;
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::{Policy, ReweightLog};

/// Routes `count` keys through any engine behind the Router interface and
/// returns the issued tickets.
fn drive(router: &mut dyn Router, keys: &mut SplitMix64, count: u64) -> Vec<Ticket> {
    (0..count)
        .map(|_| {
            router
                .route(keys.next_u64())
                .expect("within capacity")
                .ticket
        })
        .collect()
}

fn main() {
    let n = 64usize;
    let batch = n;
    // Balls per phase (a whole number of batches).
    let half = 64 * n as u64;
    // Phase 1 fleet: a few big boxes — 8×4, 16×2, 40×1 (W = 104).
    let tiers_421 = BinWeights::power_of_two_tiers(&[(8, 2), (16, 1), (40, 0)]);
    // Re-provisioned fleet, 1:1:4: the former big boxes shrink to weight 1
    // and the former small tier is upgraded to weight 4 (W = 184).
    let tiers_114 = BinWeights::power_of_two_tiers(&[(8, 0), (16, 0), (40, 2)]);

    println!("== router_lifecycle ==");
    println!(
        "fleet = {n} bins, batch = {batch}; phase 1 weights {} (W = 104), \
         phase 2 weights {} (W = 184)",
        tiers_421.name(),
        tiers_114.name()
    );

    // --- route (phase 1: 4:2:1 fleet) ------------------------------------
    let mut stream = StreamAllocator::new(
        StreamConfig::new(n)
            .policy(Policy::WeightedTwoChoice)
            .batch_size(batch)
            .seed(7)
            .weights(tiers_421),
    );
    let log = Arc::new(Mutex::new(ReweightLog::new()));
    stream.add_observer(log.clone());

    let mut keys = SplitMix64::new(2026);
    let mut tickets = drive(&mut stream, &mut keys, half);
    println!(
        "\nphase 1: routed {} requests in {} batches, weighted gap = {:.2}, \
         max normalized load = {:.1}",
        Router::stats(&stream).routed,
        Router::stats(&stream).batches,
        Router::stats(&stream).gap,
        stream.max_normalized_load()
    );

    // --- runtime reweight (applied at the next batch boundary) -----------
    stream.set_weights(tiers_114);
    println!(
        "\nstaged reweight 4:2:1 → 1:1:4 (observers so far: {} records — \
         nothing fires until the boundary)",
        log.lock().unwrap().records().len()
    );
    tickets.extend(drive(&mut stream, &mut keys, half));
    let records = log.lock().unwrap().records().to_vec();
    assert_eq!(records.len(), 1, "exactly one reweighting must fire");
    println!(
        "phase 2: reweight took effect at batch {} with {} residents; \
         weighted gap now {:.2}, max normalized load = {:.1}",
        records[0].batch_index,
        records[0].resident,
        Router::stats(&stream).gap,
        stream.max_normalized_load()
    );

    // --- release (connections close; tickets validate) -------------------
    let to_release = tickets.len() / 2;
    for ticket in tickets.drain(..to_release) {
        stream.release(ticket).expect("live ticket");
    }
    let double = tickets[0];
    stream.release(double).expect("live ticket");
    let rejected = stream.release(double);
    assert!(matches!(rejected, Err(RouteError::UnknownTicket { .. })));
    let stats = Router::stats(&stream);
    println!(
        "\nreleased {} tickets; a repeated release was rejected ({}); \
         resident = {}, conservation = {}",
        stats.released,
        rejected.unwrap_err(),
        stats.resident,
        stream.conserves_balls()
    );
    assert!(stream.conserves_balls(), "conservation violated");
    assert_eq!(stats.released, to_release as u64 + 1);

    // --- the same interface over a one-shot engine -----------------------
    let m = 32 * n as u64;
    let mut one_shot = OneShotRouter::new(HeavyAllocator::default(), m, n, 7);
    let reference = HeavyAllocator::default().allocate(m, n, 7);
    let one_shot_tickets = drive(&mut one_shot, &mut keys, m);
    assert_eq!(
        Router::loads(&one_shot),
        reference.loads,
        "adapter must reproduce allocate() exactly"
    );
    one_shot.release(one_shot_tickets[0]).expect("live ticket");
    println!(
        "\none-shot A_heavy behind the same interface: routed {} balls, \
         loads identical to allocate(), gap = {:.2}",
        m,
        one_shot.stats().gap
    );

    println!("\nOK: route → observe → reweight → release, one Router API over both engines.");
}
