//! The lower bound of Section 4, empirically.
//!
//! 1. One threshold phase with total capacity `M + O(n)` rejects `Ω(√(Mn)/t)`
//!    balls no matter how the capacity is spread over the bins (Theorem 7).
//! 2. Iterating this forces any uniform threshold algorithm to spend
//!    `Ω(log log (m/n))` rounds (Theorem 2) — and the naive fixed-threshold
//!    strawman actually needs `Ω(log n)`-ish rounds, while `A_heavy` matches the
//!    `log log` prediction, i.e. the paper's analysis is tight.
//!
//! Run with `cargo run --release --example lower_bound_demo`.

use parallel_balanced_allocations::algorithms::{HeavyAllocator, NaiveThresholdAllocator};
use parallel_balanced_allocations::lowerbound::rejection::{
    run_rejection_phase, skewed_capacities, uniform_capacities,
};
use parallel_balanced_allocations::lowerbound::{
    lower_bound_round_prediction, measure_rounds_to_finish, ClassDecomposition,
};
use parallel_balanced_allocations::stats::{Align, Cell, Table};

fn main() {
    let n = 1usize << 10;
    let ratio = 1u64 << 10;
    let m = n as u64 * ratio;

    println!("== Part 1: single-phase rejections (Theorem 7) ==\n");
    let mut table = Table::with_alignments(
        "rejections of one threshold phase, capacity M + n",
        &[
            ("capacity layout", Align::Left),
            ("rejected", Align::Right),
            ("√(Mn)/t reference", Align::Right),
            ("measured / reference", Align::Right),
            ("heavy-class E[rejections]", Align::Right),
        ],
    );
    for (name, caps) in [
        ("uniform: ⌈M/n⌉+1 each", uniform_capacities(m, n, 1)),
        ("skewed: +2 / +0 alternating", skewed_capacities(m, n, 1)),
    ] {
        let census = run_rejection_phase(m, &caps, 3);
        let decomposition = ClassDecomposition::new(m, &caps);
        table.push_row([
            Cell::from(name),
            Cell::from(census.rejected),
            Cell::from(census.reference),
            Cell::from(census.constant_estimate()),
            Cell::from(decomposition.heavy_class_expected_rejections),
        ]);
    }
    println!("{}", table.render_text());

    println!("== Part 2: round counts (Theorem 2) ==\n");
    let seeds = [0u64, 1, 2];
    let mut rounds = Table::with_alignments(
        "rounds to completion vs the lower-bound prediction",
        &[
            ("m/n", Align::Right),
            ("naive threshold (+1)", Align::Right),
            ("A_heavy", Align::Right),
            ("lower-bound prediction", Align::Right),
        ],
    );
    for &r in &[64u64, 256, 1024, 4096] {
        let m = n as u64 * r;
        let (naive, _) =
            measure_rounds_to_finish(&NaiveThresholdAllocator::new(1, 1), m, n, &seeds);
        let (heavy, _) = measure_rounds_to_finish(&HeavyAllocator::default(), m, n, &seeds);
        rounds.push_row([
            Cell::from(r),
            Cell::from(naive),
            Cell::from(heavy),
            Cell::from(lower_bound_round_prediction(m, n, 4.0) as u64),
        ]);
    }
    println!("{}", rounds.render_text());
    println!(
        "Reading: no uniform threshold algorithm can finish with O(1) excess in fewer than\n\
         ~log log(m/n) rounds; A_heavy tracks that prediction while the fixed-threshold strawman\n\
         pays closer to log n rounds."
    );
}
