//! Elastic membership, end to end: **rolling restart → flash crowd**, both
//! under skewed (Zipf) arrivals with churn, with the metrics registry
//! watching for silent drops.
//!
//! Act 1 rolls a restart across the first half of the cluster: each bin in
//! turn is drained (leaves the sampling set, keeps its residents), its
//! ticketed residents are force-migrated through the ledger, the empty bin
//! is retired, and a fresh unit-weight bin is commissioned into the
//! just-freed slot — all while arrivals keep routing. Act 2 commissions a
//! surge of extra bins for a flash crowd and decommissions them afterwards;
//! the surge slots must end the run retired **and empty**.
//!
//! Throughout, the no-silent-drops ledger holds: every migration shows up in
//! `membership.migrations`, no membership event is rejected, no ticket is
//! lost or duplicated, and conservation (`arrived − departed = resident`)
//! survives every topology change.
//!
//! Run with: `cargo run --release --example autoscale`

use parallel_balanced_allocations::prelude::{BinState, MetricsRegistry};
use parallel_balanced_allocations::stream::{
    run_scale_scenario_on, ArrivalProcess, Policy, ScaleScenario, StreamAllocator, StreamConfig,
};

/// Zipf-skewed arrivals: a hot-key workload, the hard case for rebalancing.
fn zipf(rate: usize) -> ArrivalProcess {
    ArrivalProcess::Zipf {
        keys: 1 << 16,
        exponent: 1.1,
        rate,
    }
}

fn run(scenario: &ScaleScenario, config: StreamConfig) {
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let mut stream = StreamAllocator::new(config);
    stream.install_metrics(registry.clone());
    let report = run_scale_scenario_on(scenario, stream);

    println!(
        "{:>16}: {} events staged ({} unapplied), {} residents migrated, \
         availability {:.3}, min active fraction {:.3}, final gap {:.3} (max {:.3})",
        report.name,
        report.events_staged,
        report.events_unapplied,
        report.migrated,
        report.availability,
        report.min_active_fraction,
        report.final_gap,
        report.max_gap,
    );

    // Every scripted event must have applied — the driver defers events
    // until their precondition holds, so nothing is left pending.
    assert_eq!(report.events_unapplied, 0, "scripted events must all apply");

    // Conservation through every topology change: arrived − departed =
    // resident, and the ticket ledger agrees with the bin loads.
    let stream = &report.stream;
    assert!(
        stream.conserves_balls(),
        "conservation must survive scaling"
    );

    // The no-silent-drops ledger: nothing was rejected, nothing got lost.
    let snap = registry.snapshot();
    for counter in [
        "route.rejected_unknown_ticket",
        "ingress.late_arrivals",
        "observer.errors",
        "membership.rejected_adds",
        "membership.rejected_drains",
        "membership.rejected_removes",
    ] {
        assert_eq!(snap.counter(counter), 0, "silent-drop counter {counter}");
    }
    // ... and every force-migration is accounted for by name.
    assert_eq!(
        snap.counter("membership.migrations"),
        report.migrated,
        "the registry must account for every migration"
    );

    // Retired slots must be empty: a bin leaves the cluster only after its
    // residents were released or migrated.
    let table = stream.membership().expect("scaling installs a membership");
    for bin in 0..stream.capacity() {
        if table.state(bin) == BinState::Retired {
            assert_eq!(stream.load(bin), 0, "retired bin {bin} still holds load");
            assert_eq!(
                stream.tickets_in(bin),
                0,
                "retired bin {bin} still holds tickets"
            );
        }
    }
    println!(
        "{:>16}  conservation ok, zero silent drops, {} retired slots all empty\n",
        "",
        (0..stream.capacity())
            .filter(|&b| table.state(b) == BinState::Retired)
            .count()
    );
}

fn main() {
    let bins = 32;
    let config = StreamConfig::new(bins)
        .policy(Policy::TwoChoice)
        .batch_size(bins)
        .seed(19);

    // Act 1: rolling restart of the first half of the cluster. Reserve is
    // zero — every re-add reuses the slot its remove just freed.
    let restart =
        ScaleScenario::rolling_restart(120, zipf(16), bins / 2, 10, 5).with_churn(0.3, 10);
    assert_eq!(restart.needed_reserve(), 0, "restarts recycle their slots");
    run(&restart, config.clone());

    // Act 2: flash crowd — 8 surge bins commissioned at tick 20, drained at
    // tick 60, retired once empty. They need real reserve slots.
    let crowd = ScaleScenario::flash_crowd(120, zipf(16), bins, 8, 20, 40).with_churn(0.3, 10);
    run(&crowd, config.reserve_bins(crowd.needed_reserve()));

    println!("autoscale example: all invariants held");
}
