//! End-to-end streaming router demo.
//!
//! Zipfian keyed traffic arrives over time and is routed onto `n` backend
//! bins in batches of 1024 by the sharded streaming engine (≥4 shards). Every
//! ball decides from the load snapshot of the previous batch boundary — the
//! batched/stale-information model of Los & Sauerwald (2022). The demo prints
//! the online gap trajectory of the two-choice policy and then compares its
//! final gap against single-choice on the *same* stream.
//!
//! Run with: `cargo run --release --example streaming_router`

use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::{run_scenario, ScenarioConfig};

fn main() {
    let bins = 256usize;
    let shards = 4usize;
    let batch = 1024usize;
    let ticks = 512u64;
    let rate = 512usize;
    let seed = 2024u64;

    let arrivals = ArrivalProcess::Zipf {
        keys: 1 << 15,
        exponent: 0.9,
        rate,
    };
    println!("== streaming_router ==");
    println!(
        "bins = {bins}, shards = {shards}, batch = {batch}, ticks = {ticks}, \
         rate = {rate}/tick, arrivals = Zipf(s=0.9, keys=2^15)"
    );

    let scenario = ScenarioConfig::growth(ticks, arrivals);
    let base = StreamConfig::new(bins)
        .shards(shards)
        .batch_size(batch)
        .seed(seed);

    let two = run_scenario(&scenario, base.clone().policy(StreamPolicy::TwoChoice));
    let one = run_scenario(&scenario, base.policy(StreamPolicy::OneChoice));

    println!("\nonline gap trajectory (two-choice), every 16th batch:");
    println!("{:>8} {:>10}", "batch", "gap");
    let trajectory = two.stream.gap_trajectory();
    for (i, gap) in trajectory.iter().enumerate() {
        if i % 16 == 0 || i + 1 == trajectory.len() {
            println!("{:>8} {:>10.2}", i + 1, gap);
        }
    }

    let snap = two.stream.snapshot();
    println!("\ntwo-choice final state:");
    println!("  arrived   = {}", snap.arrived);
    println!("  placed    = {}", snap.placed);
    println!("  batches   = {}", snap.batches);
    println!(
        "  load p50/p90/p99/max = {:.0}/{:.0}/{:.0}/{:.0}",
        snap.load_quantiles[0],
        snap.load_quantiles[1],
        snap.load_quantiles[2],
        snap.load_quantiles[3]
    );
    for (s, stats) in two.stream.shard_stats().iter().enumerate() {
        println!(
            "  shard {s}: accepted = {}, peak load = {}",
            stats.accepted, stats.peak_load
        );
    }

    println!(
        "\nfinal gap:  two-choice = {:.2}   single-choice = {:.2}",
        two.final_gap, one.final_gap
    );
    println!(
        "mean gap:   two-choice = {:.2}   single-choice = {:.2}",
        two.mean_gap, one.mean_gap
    );

    assert!(two.stream.conserves_balls(), "conservation violated");
    assert!(
        two.final_gap < one.final_gap,
        "two-choice ({}) must beat single-choice ({}) on this stream",
        two.final_gap,
        one.final_gap
    );
    println!("\nOK: two-choice beats single-choice under batched stale loads.");
}
