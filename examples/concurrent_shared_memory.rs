//! Running the threshold protocol as a real shared-memory parallel program.
//!
//! The model crates simulate the synchronous rounds; this example executes the
//! same protocol with bins as atomic counters and balls fanned out over a rayon
//! thread pool (and, for comparison, over crossbeam channel actors), then checks
//! that the load guarantees carry over and reports the wall-clock speed-up
//! curve.
//!
//! Run with `cargo run --release --example concurrent_shared_memory`.

use parallel_balanced_allocations::concurrent::{
    measure_speedup, run_actor_threshold, run_concurrent_heavy, run_concurrent_threshold,
};
use parallel_balanced_allocations::stats::{Align, Cell, Table};

fn main() {
    let n = 1usize << 10;
    let m = (n as u64) << 10;
    let threshold = (m / n as u64) as u32 + 8;
    let seed = 5u64;

    println!("Instance: m = {m}, n = {n}, fixed threshold ⌈m/n⌉+8\n");

    let shared = run_concurrent_threshold(m, n, threshold, 10_000, seed);
    let actor = run_actor_threshold(m, n, threshold, 10_000, 4, seed);
    let heavy = run_concurrent_heavy(m, n, seed);

    let mut table = Table::with_alignments(
        "shared-memory executions",
        &[
            ("executor", Align::Left),
            ("rounds", Align::Right),
            ("max load", Align::Right),
            ("excess", Align::Right),
            ("unallocated", Align::Right),
        ],
    );
    for (name, out) in [
        ("atomics + rayon (fixed threshold)", &shared),
        ("crossbeam actors (fixed threshold)", &actor),
        ("atomics + rayon (A_heavy schedule)", &heavy),
    ] {
        table.push_row([
            Cell::from(name),
            Cell::from(out.rounds),
            Cell::from(out.loads.iter().copied().max().unwrap_or(0) as u64),
            Cell::from(out.excess(m)),
            Cell::from(out.unallocated),
        ]);
    }
    println!("{}", table.render_text());

    println!("speed-up of one fixed-threshold allocation vs rayon threads:");
    let mut speed = Table::with_alignments(
        "wall-clock speed-up",
        &[
            ("threads", Align::Right),
            ("seconds", Align::Right),
            ("speed-up", Align::Right),
        ],
    );
    for p in measure_speedup(m, n, threshold, &[1, 2, 4], seed) {
        speed.push_row([
            Cell::from(p.threads),
            Cell::from(p.seconds),
            Cell::from(p.speedup),
        ]);
    }
    println!("{}", speed.render_text());
    println!("(On a single-core host the speed-up column is expectedly flat.)");
}
