//! Quickstart: allocate m balls into n bins with the paper's symmetric
//! threshold algorithm `A_heavy` and print the headline quantities of Theorem 1.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- 2097152 1024 7   # m n seed
//! ```

use parallel_balanced_allocations::algorithms::HeavyAllocator;
use parallel_balanced_allocations::stats::{log_log2, log_star};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1 << 20);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 10);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Allocating m = {m} balls into n = {n} bins (seed {seed}) with A_heavy…\n");

    let allocator = HeavyAllocator::default();
    let (outcome, trace) = allocator.allocate_traced(m, n, seed);
    let metrics = outcome.load_metrics();

    let ideal = m.div_ceil(n as u64);
    println!("ideal load ⌈m/n⌉        : {ideal}");
    println!("maximal bin load        : {}", metrics.max_load);
    println!(
        "excess over ⌈m/n⌉       : {}   (Theorem 1: O(1))",
        outcome.excess(m)
    );
    println!("minimum bin load        : {}", metrics.min_load);
    println!(
        "rounds                  : {}   (phase 1: {}, phase 2: {})",
        outcome.rounds, trace.phase1_rounds, trace.phase2_rounds
    );
    println!(
        "Theorem 1 round budget  : ~log2log2(m/n) + log* n = {:.1} + {}",
        log_log2(m as f64 / n as f64),
        log_star(n as f64)
    );
    println!(
        "total messages          : {}   ({:.2} per ball; Theorem 6: O(1) expected)",
        outcome.messages.total(),
        outcome.messages.per_ball(m)
    );
    println!(
        "max messages at a bin   : {}   (bound: (1+o(1))·m/n + O(log n))",
        outcome.census.max_bin_received()
    );
    println!(
        "\nload histogram (load: #bins): {}",
        metrics.histogram.render_compact()
    );
    assert!(outcome.is_complete(m), "every ball must be placed");
}
