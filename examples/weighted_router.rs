//! Weighted multi-backend router demo (the E13 scenario, end to end).
//!
//! A fleet of heterogeneous backends — a 4:2:1 capacity tier mix — serves a
//! keyed request stream through the sharded streaming engine. The demo routes
//! the *same* stream twice:
//!
//! * **weight-oblivious two-choice** equalises raw loads, so the small
//!   (capacity-1) tier saturates first: its *normalized* load `load/weight`
//!   overshoots the capacity-fair level `m/W`;
//! * **weighted two-choice** samples candidates proportionally to capacity
//!   and compares normalized loads, holding every tier near `m/W`.
//!
//! It also prints the capacity-aware threshold policy (overflow retry) and
//! the constant-round weighted asymmetric one-shot allocation on the same
//! tier mix.
//!
//! Run with: `cargo run --release --example weighted_router`

use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::Policy;

fn tier_summary(normalized: &[f64], tiers: &[(usize, f64)]) -> Vec<(f64, f64)> {
    // Mean and max normalized load per tier (tiers are consecutive ranges).
    let mut out = Vec::new();
    let mut start = 0usize;
    for &(count, _) in tiers {
        let slice = &normalized[start..start + count];
        let mean = slice.iter().sum::<f64>() / count as f64;
        let max = slice.iter().copied().fold(0.0f64, f64::max);
        out.push((mean, max));
        start += count;
    }
    out
}

fn main() {
    let n = 224usize; // 32×4 + 64×2 + 128×1  →  W = 384
    let tiers = [(32usize, 4.0f64), (64, 2.0), (128, 1.0)];
    let weights = BinWeights::power_of_two_tiers(&[(32, 2), (64, 1), (128, 0)]);
    let m = 96u64 * n as u64;
    let total_weight: f64 = weights.to_vec(n).iter().sum();
    let fair = m as f64 / total_weight;

    println!("== weighted_router ==");
    println!(
        "backends = {n} in a 4:2:1 capacity mix (32×4, 64×2, 128×1), \
         W = {total_weight}, requests = {m}, capacity-fair level m/W = {fair:.1}"
    );

    let base = StreamConfig::new(n)
        .batch_size(n)
        .shards(4)
        .seed(2026)
        .weights(weights.clone());
    let mut streams = Vec::new();
    for policy in [
        Policy::TwoChoice,
        Policy::WeightedTwoChoice,
        Policy::CapacityThreshold { d: 2, slack: 2 },
    ] {
        let mut stream = StreamAllocator::new(base.clone().policy(policy));
        let mut keys = parallel_balanced_allocations::model::SplitMix64::new(7);
        for _ in 0..m {
            stream.push(keys.next_u64());
        }
        stream.flush();
        assert!(stream.conserves_balls(), "conservation violated");
        streams.push((policy.name(), stream));
    }

    println!("\nper-tier normalized load (mean / max), fair level = {fair:.1}:");
    println!(
        "{:>28} {:>14} {:>14} {:>14} {:>10}",
        "policy", "tier 4x", "tier 2x", "tier 1x", "max norm"
    );
    for (name, stream) in &streams {
        let normalized = stream.normalized_loads();
        let summary = tier_summary(&normalized, &tiers);
        println!(
            "{:>28} {:>7.1}/{:<6.1} {:>7.1}/{:<6.1} {:>7.1}/{:<6.1} {:>10.1}",
            name,
            summary[0].0,
            summary[0].1,
            summary[1].0,
            summary[1].1,
            summary[2].0,
            summary[2].1,
            stream.max_normalized_load(),
        );
    }

    // The one-shot side: the weighted asymmetric superbin algorithm on the
    // same tier mix finishes in a constant number of rounds with O(1)
    // normalized excess.
    let asym = WeightedAsymmetricAllocator::from_weights(&weights, n);
    let (out, trace) = asym.allocate_traced(m, 2026);
    assert!(out.is_complete(m));
    println!(
        "\nweighted asymmetric one-shot: rounds = {}, virtual bins = {}, \
         normalized excess over m/W = {:.1}",
        out.rounds,
        trace.virtual_bins,
        asym.normalized_excess(&out, m)
    );

    let oblivious = streams[0].1.max_normalized_load();
    let weighted = streams[1].1.max_normalized_load();
    println!(
        "\nmax normalized load:  oblivious two-choice = {oblivious:.1}   \
         weighted two-choice = {weighted:.1}   (fair = {fair:.1})"
    );
    assert!(
        weighted < oblivious,
        "weighted two-choice ({weighted}) must beat weight-oblivious \
         two-choice ({oblivious}) on a 4:2:1 tier mix"
    );
    println!("\nOK: weighted two-choice beats weight-oblivious routing on heterogeneous backends.");
}
