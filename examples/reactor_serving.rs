//! The event-driven serving path, end to end: a metrics-instrumented
//! `ConcurrentRouter` behind the **reactor** TCP front-end, pipelined
//! loopback clients driving it, and the registry snapshot proving the
//! batched paths really ran.
//!
//! Where `examples/socket_server.rs` demonstrates the thread-per-connection
//! front-end with one request in flight per client, this example pipelines:
//! each client writes a whole window of `ROUTE` lines before reading any
//! reply, so contiguous runs reach the server back-to-back and execute
//! through `route_many` / `release_many` instead of one engine call per
//! request. The wire protocol and the metric names are identical — the same
//! `LineClient` talks to either server.
//!
//! The run:
//!
//! 1. builds a router with a shared `MetricsRegistry` and starts a
//!    `ReactorServer` (raw `epoll` on Linux, portable fallback elsewhere);
//! 2. spawns pipelined client threads (window of 64), plus deliberate
//!    protocol abuse that must land in named counters, never vanish;
//! 3. drives the membership verbs (`ADD`/`DRAIN`/`MIGRATE`) through the
//!    same line protocol to show the elastic path works over the reactor;
//! 4. snapshots the registry and asserts the books balance, then repeats a
//!    short smoke pass with `force_fallback_poller` so both `Poller`
//!    implementations are exercised in one run.
//!
//! Run with: `cargo run --release --example reactor_serving`

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use parallel_balanced_allocations::obs::MetricsRegistry;
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::Policy;

/// One pipelined client: `requests` keys in windows of `window` — write the
/// whole window, read the replies, release the issued ids the same way.
fn pipelined_client(addr: SocketAddr, stream_id: u64, requests: u64, window: usize) {
    let stream = TcpStream::connect(addr).expect("connect loopback");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut line = String::new();
    let mut ids = Vec::with_capacity(window);
    let mut sent = 0u64;
    while sent < requests {
        let burst = window.min((requests - sent) as usize);
        let mut batch = String::new();
        for i in 0..burst {
            let key = (stream_id << 32) | (sent + i as u64);
            batch.push_str(&format!("ROUTE {key}\n"));
        }
        writer.write_all(batch.as_bytes()).expect("write window");
        ids.clear();
        for _ in 0..burst {
            line.clear();
            reader.read_line(&mut line).expect("read route reply");
            let mut parts = line.split_whitespace();
            assert_eq!(parts.next(), Some("OK"), "route reply: {line:?}");
            let _bin = parts.next().expect("bin field");
            let id: u64 = parts.next().expect("id field").parse().expect("ticket id");
            ids.push(id);
        }
        let mut batch = String::new();
        for id in &ids {
            batch.push_str(&format!("RELEASE {id}\n"));
        }
        writer.write_all(batch.as_bytes()).expect("write releases");
        for _ in 0..burst {
            line.clear();
            reader.read_line(&mut line).expect("read release reply");
            assert!(line.starts_with("OK "), "an issued id releases: {line:?}");
        }
        sent += burst as u64;
    }
}

fn serve_round(force_fallback: bool, clients: usize, requests: u64) -> u64 {
    let registry = Arc::new(MetricsRegistry::new());
    let router = ConcurrentRouter::with_metrics(
        StreamConfig::new(32)
            .policy(Policy::TwoChoice)
            .batch_size(256)
            .shards(4)
            .reserve_bins(1) // one retired slot for the ADD to commission
            .seed(42),
        Arc::clone(&registry),
    );
    let server = ReactorServer::start(
        router,
        ReactorConfig {
            force_fallback_poller: force_fallback,
            ..ReactorConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let window = 64usize;

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..clients {
            scope.spawn(move || pipelined_client(addr, t as u64, requests, window));
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    // Protocol abuse — must be counted by name, never silently dropped.
    let mut client = LineClient::connect(addr).expect("connect for abuse");
    assert_eq!(
        client.release(u64::MAX).unwrap(),
        None,
        "forged id rejected"
    );
    assert_eq!(client.request("GARBAGE").unwrap(), "ERR bad-request");

    // The elastic-membership verbs flow through the same reactor protocol.
    // Staged events apply at the next batch boundary, so: park tickets,
    // stage the scale events, route past a flush to apply them, then
    // migrate the drained bin's residents and release everything.
    let mut open = Vec::new();
    for key in 0..64u64 {
        open.push(client.route(1 << 40 | key).expect("route over tcp").1);
    }
    client.stage_drain(0).expect("stage DRAIN over tcp");
    client.stage_add_tiered(1.0, 2).expect("stage ADD over tcp");
    for key in 0..8u64 {
        open.push(client.route(1 << 41 | key).expect("route over tcp").1);
    }
    client.flush().expect("flush applies the staged events");
    let migrated = client.migrate().expect("MIGRATE over tcp");
    assert_eq!(server.router().tickets_in(0), 0, "drained bin emptied");
    for id in open.drain(..) {
        assert!(client.release(id).unwrap().is_some(), "parked ids redeem");
    }
    let extra = 72u64; // membership-phase routes, all released above
    client.flush().expect("flush over tcp");

    assert!(
        server.router().conserves_balls(),
        "conservation at shutdown"
    );
    assert_eq!(server.router().resident(), 0, "all windows released");
    server.shutdown();

    let total = clients as u64 * requests + extra;
    let snap = registry.snapshot();
    assert_eq!(snap.counter("route.routed"), total);
    assert_eq!(snap.counter("route.released"), total);
    assert_eq!(snap.counter("server.unknown_ticket"), 1);
    assert_eq!(snap.counter("server.bad_request"), 1);
    assert_eq!(snap.counter("server.connections"), clients as u64 + 1);
    assert_eq!(snap.counter("membership.adds"), 1);
    assert_eq!(snap.counter("membership.drains"), 1);
    assert_eq!(snap.counter("membership.migrations"), migrated);
    // Every request is attributed to exactly one reactor thread.
    let per_reactor: u64 = (0..ReactorConfig::default().reactors)
        .map(|i| snap.counter(&format!("server.reactor{i}.requests")))
        .sum();
    assert_eq!(per_reactor, snap.counter("server.requests"));

    let poller = if force_fallback {
        "fallback poll loop"
    } else if cfg!(target_os = "linux") {
        "raw epoll"
    } else {
        "fallback poll loop"
    };
    println!(
        "[{poller}] served {} requests in {:.2}s ({:.0} req/s wall; 1-core \
         containers serialise the clients, so treat throughput as a smoke \
         number), {} batches, {migrated} keys migrated off the drained bin",
        snap.counter("server.requests"),
        elapsed,
        snap.counter("server.requests") as f64 / elapsed,
        snap.counter("router.stream_batches"),
    );
    if let Some(latency) = snap.histogram("server.route_latency_ns") {
        println!(
            "[{poller}] route latency over tcp: p50 {:.1}us p90 {:.1}us p99 {:.1}us \
             ({} samples)",
            latency.p50 as f64 / 1e3,
            latency.p90 as f64 / 1e3,
            latency.p99 as f64 / 1e3,
            latency.count
        );
    }
    total
}

fn main() {
    println!("== reactor_serving ==");
    // Main pass: the platform's best poller (epoll on Linux).
    let total = serve_round(false, 4, 2_000);
    // Smoke pass: the portable fallback, same protocol, same assertions.
    let smoke = serve_round(true, 2, 200);
    println!("all books balanced across both pollers ({total} + {smoke} routes)");
}
