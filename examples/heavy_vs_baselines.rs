//! The paper's motivating comparison (Section 1): how much does parallel
//! communication buy over the naive one-shot allocation, and how close does the
//! parallel algorithm get to the sequential two-choice gold standard?
//!
//! Prints one table row per algorithm on the same heavily loaded instance:
//! single-choice (excess Θ(√(m/n·log n))), sequential Greedy[2] (excess
//! O(log log n)), the naive fixed-threshold strawman (Ω(log n) rounds),
//! `A_heavy` (excess O(1) in O(log log(m/n) + log* n) rounds) and the asymmetric
//! superbin algorithm (excess O(1) in O(1) rounds).
//!
//! Run with `cargo run --release --example heavy_vs_baselines`.

use parallel_balanced_allocations::algorithms::{
    AsymmetricAllocator, HeavyAllocator, NaiveThresholdAllocator, TrivialAllocator,
};
use parallel_balanced_allocations::baselines::{GreedyDAllocator, SingleChoiceAllocator};
use parallel_balanced_allocations::model::Allocator;
use parallel_balanced_allocations::stats::{Align, Cell, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1 << 10);
    let ratio: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 10);
    let m = n as u64 * ratio;
    let seed = 7u64;

    println!("Instance: m = {m} balls, n = {n} bins (m/n = {ratio}), seed {seed}\n");

    let single = SingleChoiceAllocator::default();
    let greedy = GreedyDAllocator::new(2);
    let naive = NaiveThresholdAllocator::new(1, 1);
    let trivial = TrivialAllocator;
    let heavy = HeavyAllocator::default();
    let asymmetric = AsymmetricAllocator::default();
    let algorithms: Vec<(&dyn Allocator, &str)> = vec![
        (&single, "one round, no coordination"),
        (&greedy, "sequential: m sequential steps"),
        (&naive, "parallel, fixed threshold m/n+1"),
        (&trivial, "deterministic sweep, ≤ n rounds"),
        (&heavy, "the paper's symmetric algorithm"),
        (&asymmetric, "the paper's asymmetric algorithm"),
    ];

    let mut table = Table::with_alignments(
        "excess load and rounds on the same instance",
        &[
            ("algorithm", Align::Left),
            ("excess over ⌈m/n⌉", Align::Right),
            ("rounds", Align::Right),
            ("msgs / ball", Align::Right),
            ("note", Align::Left),
        ],
    );
    for (alloc, note) in algorithms {
        let out = alloc.allocate(m, n, seed);
        assert!(
            out.is_complete(m),
            "{} must allocate every ball",
            alloc.name()
        );
        table.push_row([
            Cell::from(alloc.name()),
            Cell::from(out.excess(m)),
            Cell::from(out.rounds),
            Cell::from(out.messages.per_ball(m)),
            Cell::from(note),
        ]);
    }
    println!("{}", table.render_text());
    println!(
        "Reading: single-choice pays ~√(m/n·log n) extra balls, Greedy[2] pays O(log log n) but is\n\
         sequential, and the paper's algorithms pay only O(1) extra while using few parallel rounds."
    );
}
