//! The asymmetric superbin algorithm of Section 5 (Theorem 3) in action.
//!
//! Shows the per-round schedule (superbin counts, per-bin quotas), the final
//! load profile and the per-bin message bound — and contrasts its *constant*
//! round count with `A_heavy`'s `log log(m/n)` rounds on the same instance.
//!
//! Run with `cargo run --release --example asymmetric_allocation`.

use parallel_balanced_allocations::algorithms::{AsymmetricAllocator, HeavyAllocator};
use parallel_balanced_allocations::model::Allocator;
use parallel_balanced_allocations::stats::{Align, Cell, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1 << 10);
    let ratio: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 11);
    let m = n as u64 * ratio;
    let seed = 11u64;

    println!("Instance: m = {m} balls, n = {n} bins (m/n = {ratio})\n");

    let asymmetric = AsymmetricAllocator::default();
    let (out, trace) = asymmetric.allocate_traced(m, n, seed);
    assert!(out.is_complete(m));

    println!("symmetric pre-round used : {}", trace.preround);
    let mut schedule = Table::with_alignments(
        "asymmetric round schedule",
        &[
            ("round", Align::Right),
            ("superbins n_r", Align::Right),
            ("per-bin quota q_r", Align::Left),
        ],
    );
    for (i, (&n_r, &q)) in trace
        .superbins_per_round
        .iter()
        .zip(&trace.quotas_per_round)
        .enumerate()
    {
        let quota = if q == u64::MAX {
            "accept everything (final)".to_string()
        } else {
            q.to_string()
        };
        schedule.push_row([Cell::from(i + 1), Cell::from(n_r), Cell::from(quota)]);
    }
    println!("{}", schedule.render_text());

    println!("rounds                  : {}", out.rounds);
    println!(
        "excess over ⌈m/n⌉       : {}   (Theorem 3: O(1))",
        out.excess(m)
    );
    println!(
        "max messages at a bin   : {}   (bound: (1+o(1))·m/n + O(log n) = {:.0})",
        out.census.max_bin_received(),
        1.05 * ratio as f64 + 60.0 * (n as f64).ln()
    );

    // Contrast with the symmetric algorithm on the same instance.
    let heavy = HeavyAllocator::default().allocate(m, n, seed);
    println!(
        "\nA_heavy on the same instance: {} rounds, excess {} — asymmetry buys a round count that\n\
         does not grow with m/n at all.",
        heavy.rounds,
        heavy.excess(m)
    );
}
