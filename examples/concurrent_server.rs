//! The concurrent serving core, end to end: **many client threads, one
//! shared router handle** — the transport-less heart of a request/response
//! server.
//!
//! N client threads each clone one `ConcurrentRouter` handle and run a
//! connection loop against it: `route(key)` picks a backend for the request
//! (two-choice over the epoch-published stale snapshot — the batched model's
//! parallel-agents regime), the client holds the returned `Ticket` for the
//! connection's lifetime, and `release(ticket)` closes it. Every client
//! keeps a bounded window of open connections, so the run exercises
//! concurrent route/release churn, boundary publication and ticket
//! validation all at once.
//!
//! At shutdown the example verifies what must hold for *every* thread
//! interleaving: conservation (`placed − departed == Σ loads`), ticket-ledger
//! consistency (open connections == resident tickets; double releases
//! rejected), and one batch boundary per `batch_size` routed balls.
//!
//! Run with: `cargo run --release --example concurrent_server`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parallel_balanced_allocations::model::SplitMix64;
use parallel_balanced_allocations::prelude::*;
use parallel_balanced_allocations::stream::Policy;

/// One simulated client: routes `requests` keyed requests through the shared
/// handle, keeping at most `window` connections open (oldest closes first).
/// Returns the tickets still open at disconnect plus how many it released.
fn client(
    router: ConcurrentRouter,
    id: u64,
    requests: u64,
    window: usize,
    released: Arc<AtomicU64>,
) -> Vec<Ticket> {
    let mut keys = SplitMix64::for_stream(42, 0xc11e47, id);
    let mut open = std::collections::VecDeque::with_capacity(window);
    for _ in 0..requests {
        let placement = router
            .route(keys.next_u64())
            .expect("routing is infallible");
        open.push_back(placement.ticket);
        if open.len() > window {
            let oldest = open.pop_front().expect("window is non-empty");
            router
                .release(oldest)
                .expect("open connections release once");
            released.fetch_add(1, Ordering::Relaxed);
        }
    }
    open.into_iter().collect()
}

fn main() {
    let n = 64usize; // backends
    let clients = 8u64; // concurrent caller threads (acceptance: ≥ 4)
    let requests = 20_000u64; // per client
    let window = 256usize; // open connections per client
    let batch = 512usize;

    let router = ConcurrentRouter::new(
        StreamConfig::new(n)
            .policy(Policy::TwoChoice)
            .batch_size(batch)
            .shards(8)
            .seed(42),
    );
    println!("== concurrent_server ==");
    println!(
        "{n} backends, {clients} client threads x {requests} requests, \
         connection window {window}, batch {batch}"
    );

    // --- serve: all clients share one handle ------------------------------
    let released = Arc::new(AtomicU64::new(0));
    let start = std::time::Instant::now();
    let still_open: Vec<Ticket> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|id| {
                let router = router.clone();
                let released = Arc::clone(&released);
                scope.spawn(move || client(router, id, requests, window, released))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let total = clients * requests;
    let stats = router.stats();
    println!(
        "served {} requests in {:.2}s ({:.2} Mreq/s wall; 1-core containers \
         serialise the threads, so treat throughput as a smoke number)",
        stats.routed,
        elapsed,
        total as f64 / elapsed / 1e6
    );
    println!(
        "boundaries: {} batches published (epoch {}), final gap {:.2}",
        router.batches(),
        router.snapshot_epoch(),
        stats.gap
    );

    // --- shutdown checks ---------------------------------------------------
    assert_eq!(stats.routed, total, "every request was routed");
    assert_eq!(
        stats.released,
        released.load(Ordering::Relaxed),
        "every in-loop close was a validated release"
    );
    assert!(router.conserves_balls(), "conservation at shutdown");
    assert_eq!(
        router.resident_tickets() as u64,
        total - stats.released,
        "open connections == resident tickets"
    );
    assert_eq!(
        still_open.len() as u64,
        total - stats.released,
        "clients hold exactly the open tickets"
    );
    // One boundary per batch_size routed balls (total is a multiple here).
    assert_eq!(router.batches(), total / batch as u64, "boundary cadence");

    let loads = router.loads();
    let resident: u64 = loads.iter().map(|&l| l as u64).sum();
    println!(
        "resident connections: {} across {} backends (max backend load {})",
        resident,
        n,
        loads.iter().max().unwrap()
    );

    // Drain the remaining connections; a second release of the same ticket
    // must be rejected, and the fleet must return to empty.
    let mut double_rejected = 0u64;
    for &ticket in &still_open {
        router.release(ticket).expect("open ticket releases");
        if router.release(ticket).is_err() {
            double_rejected += 1;
        }
    }
    assert_eq!(double_rejected, still_open.len() as u64);
    assert_eq!(router.resident(), 0, "all connections closed");
    assert!(router.conserves_balls());
    println!(
        "shutdown: drained {} open connections, {} double releases rejected, \
         fleet empty — conservation holds",
        still_open.len(),
        double_rejected
    );
}
